package fastsketches

import (
	"fastsketches/internal/autoscale"
	"fastsketches/internal/countmin"
	"fastsketches/internal/hll"
	"fastsketches/internal/quantiles"
	"fastsketches/internal/shard"
	"fastsketches/internal/theta"
)

// The deprecated per-family registry surface, kept in one place until
// removal. Every method here predates the typed-handle API and survives only
// for compatibility: each is a thin forwarder over the Open*/Handle path (or
// the name-spanning Replace*/Stop* admin calls), so there is exactly one code
// path — the declarative one — behind both surfaces. New code should open a
// handle:
//
//	h, err := reg.OpenTheta(name, fastsketches.Spec{})   // instead of reg.Theta(name)
//	h.Resize(s)                                          // instead of reg.ResizeTheta(name, s)
//	h.QueryInto(acc)                                     // instead of reg.ThetaQueryInto(name, acc)
//
// and declare views, windows, autoscaling and lifecycle through Spec.
//
// The zero Spec declares nothing and cannot fail, so the forwarders' Open
// errors are unreachable; they panic rather than silently alter the original
// signatures.

// openTheta is the shared forwarder body: open with the zero Spec, which
// cannot fail.
func (r *Registry) openTheta(name string) *ThetaHandle {
	h, err := r.OpenTheta(name, Spec{})
	if err != nil {
		panic(err) // unreachable: the zero Spec declares nothing
	}
	return h
}

func (r *Registry) openHLL(name string) *HLLHandle {
	h, err := r.OpenHLL(name, Spec{})
	if err != nil {
		panic(err)
	}
	return h
}

func (r *Registry) openQuantiles(name string) *QuantilesHandle {
	h, err := r.OpenQuantiles(name, Spec{})
	if err != nil {
		panic(err)
	}
	return h
}

func (r *Registry) openCountMin(name string) *CountMinHandle {
	h, err := r.OpenCountMin(name, Spec{})
	if err != nil {
		panic(err)
	}
	return h
}

// Theta returns the named sharded distinct-count sketch, creating it on
// first use.
//
// Deprecated: use OpenTheta, whose Handle carries the same ingest/query
// methods plus the lifecycle knobs (view, window, autoscale, TTL, budget
// class) in one declarative Spec.
func (r *Registry) Theta(name string) *shard.Theta { return r.openTheta(name).Sketch() }

// HLL returns the named sharded HLL sketch, creating it on first use.
//
// Deprecated: use OpenHLL.
func (r *Registry) HLL(name string) *shard.HLL { return r.openHLL(name).Sketch() }

// Quantiles returns the named sharded quantiles sketch, creating it on
// first use.
//
// Deprecated: use OpenQuantiles.
func (r *Registry) Quantiles(name string) *shard.Quantiles { return r.openQuantiles(name).Sketch() }

// CountMin returns the named sharded frequency sketch, creating it on first
// use.
//
// Deprecated: use OpenCountMin.
func (r *Registry) CountMin(name string) *shard.CountMin { return r.openCountMin(name).Sketch() }

// ResizeTheta live-reshards the named Θ sketch to the given shard count,
// creating the sketch on first use — see Handle.Resize for the transition
// semantics (writers and queriers stay active; transiently S_old·r +
// S_new·r).
//
// Deprecated: use OpenTheta and Handle.Resize (or Spec.Shards), or
// ResizeSketch to resize by family string without creating on miss.
func (r *Registry) ResizeTheta(name string, shards int) error {
	return r.openTheta(name).Resize(shards)
}

// ResizeHLL is ResizeTheta for the named HLL sketch.
//
// Deprecated: use OpenHLL and Handle.Resize, or ResizeSketch.
func (r *Registry) ResizeHLL(name string, shards int) error {
	return r.openHLL(name).Resize(shards)
}

// ResizeQuantiles is ResizeTheta for the named quantiles sketch.
//
// Deprecated: use OpenQuantiles and Handle.Resize, or ResizeSketch.
func (r *Registry) ResizeQuantiles(name string, shards int) error {
	return r.openQuantiles(name).Resize(shards)
}

// ResizeCountMin is ResizeTheta for the named Count-Min sketch. Per-key
// estimates keep their one-sided guarantee across the resize, but the
// overestimation bound widens to ε·N over the retired stream — see
// shard.CountMin.Estimate.
//
// Deprecated: use OpenCountMin and Handle.Resize, or ResizeSketch.
func (r *Registry) ResizeCountMin(name string, shards int) error {
	return r.openCountMin(name).Resize(shards)
}

// ThetaQueryInto answers the named Θ sketch's merged distinct-count query
// by resetting the caller-owned acc and folding every shard snapshot into
// it — the zero-allocation query plane for callers that keep an accumulator
// per reader goroutine.
//
// Deprecated: use OpenTheta and Handle.QueryInto; the estimate is read off
// the accumulator, exactly as here.
func (r *Registry) ThetaQueryInto(name string, acc *theta.Union) float64 {
	r.openTheta(name).QueryInto(acc)
	return acc.Estimate()
}

// HLLQueryInto is ThetaQueryInto for the named HLL sketch.
//
// Deprecated: use OpenHLL and Handle.QueryInto.
func (r *Registry) HLLQueryInto(name string, acc *hll.Sketch) float64 {
	r.openHLL(name).QueryInto(acc)
	return acc.Estimate()
}

// QuantilesQueryInto resets the caller-owned acc and folds the named
// quantiles sketch's shard summaries into it; query acc (Quantile, Rank, N)
// until its next reuse.
//
// Deprecated: use OpenQuantiles and Handle.QueryInto.
func (r *Registry) QuantilesQueryInto(name string, acc *quantiles.Accumulator) {
	r.openQuantiles(name).QueryInto(acc)
}

// CountMinQueryInto resets the caller-owned acc and folds the named
// Count-Min sketch's counters into it — the aggregate (S·r-bounded) view;
// per-key estimates that only need the owning shard should use the handle's
// Sketch().Estimate instead.
//
// Deprecated: use OpenCountMin and Handle.QueryInto.
func (r *Registry) CountMinQueryInto(name string, acc *countmin.Sketch) {
	r.openCountMin(name).QueryInto(acc)
}

// EnableView materializes the merged view of every sketch currently
// registered under name, across all four families.
//
// Deprecated: use ReplaceView (identical semantics — this facade forwards
// to it), or Spec.View on Open* to declare the view per handle.
func (r *Registry) EnableView(name string, cfg ViewConfig) (int, error) {
	return r.ReplaceView(name, cfg)
}

// DisableView stops the view refresher of every sketch registered under
// name, across all families.
//
// Deprecated: use StopView (identical semantics — this facade forwards to
// it), or Handle.DisableView per sketch.
func (r *Registry) DisableView(name string) int {
	return r.StopView(name)
}

// Autoscale attaches an autoscaling controller to every sketch currently
// registered under name, across all four families, and starts their
// sampling loops — see ReplaceAutoscale for the control-loop semantics.
// Each call attaches fresh controllers: repeated calls stack them.
//
// Deprecated: use ReplaceAutoscale (idempotent per name) or Spec.Autoscale
// on Open* (idempotent per handle); stacking controllers is almost never
// what an admin plane wants.
func (r *Registry) Autoscale(name string, p autoscale.Policy) ([]*autoscale.Controller, error) {
	return r.autoscale(p, func(n string) bool { return n == name })
}

// AutoscaleAll is Autoscale over every sketch currently registered, any
// name, all families — one controller per sketch, all under the same
// policy.
//
// Deprecated: attach policies per handle with Spec.Autoscale on Open*, or
// per name with ReplaceAutoscale, so controller lifecycle stays idempotent.
func (r *Registry) AutoscaleAll(p autoscale.Policy) ([]*autoscale.Controller, error) {
	return r.autoscale(p, func(string) bool { return true })
}
