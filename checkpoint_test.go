package fastsketches_test

import (
	"bytes"
	"errors"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"fastsketches"
	"fastsketches/internal/autoscale"
	"fastsketches/internal/snapshot"
	"fastsketches/internal/theta"
)

// Typed-handle open helpers: every sketch in this file is reached through
// the declarative Open* path.
func openTheta(t testing.TB, reg *fastsketches.Registry, name string) *fastsketches.ThetaHandle {
	t.Helper()
	h, err := reg.OpenTheta(name, fastsketches.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func openHLL(t testing.TB, reg *fastsketches.Registry, name string) *fastsketches.HLLHandle {
	t.Helper()
	h, err := reg.OpenHLL(name, fastsketches.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func openQuantiles(t testing.TB, reg *fastsketches.Registry, name string) *fastsketches.QuantilesHandle {
	t.Helper()
	h, err := reg.OpenQuantiles(name, fastsketches.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func openCountMin(t testing.TB, reg *fastsketches.Registry, name string) *fastsketches.CountMinHandle {
	t.Helper()
	h, err := reg.OpenCountMin(name, fastsketches.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// populated builds a registry holding all four families with a quiesced
// (exact) stream: n distinct keys into theta/hll, n items into quantiles,
// and n countmin updates over keySpace keys. The final resize drains every
// buffer so the state is an exact function of the stream.
func populated(t *testing.T, n int) *fastsketches.Registry {
	t.Helper()
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{
		Shards: 3, Writers: 2, MaxError: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	th, h := openTheta(t, reg, "ck.theta"), openHLL(t, reg, "ck.hll")
	q, cm := openQuantiles(t, reg, "ck.q"), openCountMin(t, reg, "ck.cm")
	for i := 0; i < n; i++ {
		k := uint64(i)
		th.Update(i%2, k)
		h.Update(i%2, k)
		q.Update(i%2, float64(i))
		cm.Update(i%2, k%61)
	}
	if err := errors.Join(
		th.Resize(2), h.Resize(2), q.Resize(2), cm.Resize(2),
	); err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	const n = 2000
	src := populated(t, n)
	defer src.Close()

	// Serving configuration rides the checkpoint: a view on the HLL and an
	// autoscale policy on the Count-Min.
	if _, err := src.ReplaceView("ck.hll", fastsketches.ViewConfig{
		RefreshEvery: 40 * time.Millisecond, MaxAge: -1,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := src.ReplaceAutoscale("ck.cm", autoscale.Policy{
		MinShards: 1, MaxShards: 16, HighWater: 5e5, LowWater: 1e4,
	}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := src.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	dst, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{
		Shards: 3, Writers: 2, MaxError: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if err := dst.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	// Identity and geometry restored.
	for _, want := range []struct {
		fam, name string
		shards    int
	}{
		{"theta", "ck.theta", 2}, {"hll", "ck.hll", 2},
		{"quantiles", "ck.q", 2}, {"countmin", "ck.cm", 2},
	} {
		inf, ok := dst.Info(want.fam, want.name)
		if !ok {
			t.Fatalf("restored registry missing %s/%s", want.fam, want.name)
		}
		if inf.Shards != want.shards {
			t.Errorf("%s/%s: restored shards %d, want %d", want.fam, want.name, inf.Shards, want.shards)
		}
	}

	// Exact families agree exactly with the source.
	thAcc := openTheta(t, dst, "ck.theta").NewAccumulator()
	openTheta(t, dst, "ck.theta").QueryInto(thAcc)
	if got := thAcc.Estimate(); got != n {
		t.Errorf("restored theta estimate %v, want exactly %d (eager regime)", got, n)
	}
	srcAcc := openHLL(t, src, "ck.hll").NewAccumulator()
	openHLL(t, src, "ck.hll").QueryInto(srcAcc)
	dstAcc := openHLL(t, dst, "ck.hll").NewAccumulator()
	openHLL(t, dst, "ck.hll").QueryInto(dstAcc)
	if got, want := dstAcc.Estimate(), srcAcc.Estimate(); got != want {
		t.Errorf("restored hll estimate %v, want %v", got, want)
	}
	dstCM := openCountMin(t, dst, "ck.cm")
	cmAcc := dstCM.NewAccumulator()
	dstCM.QueryInto(cmAcc)
	if cmAcc.N() != n {
		t.Errorf("restored countmin N %d, want exactly %d", cmAcc.N(), n)
	}
	srcCM := openCountMin(t, src, "ck.cm")
	for key := uint64(0); key < 61; key++ {
		if g, w := dstCM.Sketch().Estimate(key), srcCM.Sketch().Estimate(key); g != w {
			t.Errorf("countmin key %d: restored %d, source %d", key, g, w)
		}
	}
	dstQ := openQuantiles(t, dst, "ck.q")
	qAcc := dstQ.NewAccumulator()
	dstQ.QueryInto(qAcc)
	if qAcc.N() != n {
		t.Errorf("restored quantiles N %d, want %d", qAcc.N(), n)
	}
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		if v := qAcc.Quantile(phi); math.Abs(v/float64(n)-phi) > 0.05 {
			t.Errorf("restored q(%v) = %v outside the rank guarantee", phi, v)
		}
	}

	// View settings and autoscale policy re-attached.
	if inf, _ := dst.Info("hll", "ck.hll"); !inf.ViewEnabled {
		t.Error("restored hll sketch lost its materialized view")
	}
	if stopped := dst.StopAutoscale("ck.cm"); stopped != 1 {
		t.Errorf("restored registry has %d controllers under ck.cm, want 1", stopped)
	}
}

func TestCheckpointAfterCloseCapturesDrainedState(t *testing.T) {
	const n = 1500
	src := populated(t, n)
	src.Close()

	// The shutdown checkpoint: captured after Close, it holds the exact
	// drained state.
	ckpt := src.AppendCheckpoint(nil)

	dst, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{Shards: 2, MaxError: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if err := dst.Restore(bytes.NewReader(ckpt)); err != nil {
		t.Fatal(err)
	}
	cmh := openCountMin(t, dst, "ck.cm")
	acc := cmh.NewAccumulator()
	cmh.QueryInto(acc)
	if acc.N() != n {
		t.Errorf("post-Close checkpoint N %d, want exactly %d", acc.N(), n)
	}

	// Restore, by contrast, must refuse a closed registry.
	if err := src.Restore(bytes.NewReader(ckpt)); err == nil {
		t.Error("Restore after Close did not error")
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	const n = 800
	src := populated(t, n)
	defer src.Close()

	path := filepath.Join(t.TempDir(), "sketchd.ckpt")
	if err := src.CheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	// The atomic rename leaves no temp debris next to the file.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("checkpoint dir holds %d entries, want only the checkpoint", len(entries))
	}

	dst, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{Shards: 2, MaxError: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if err := dst.RestoreFile(path); err != nil {
		t.Fatal(err)
	}
	thh := openTheta(t, dst, "ck.theta")
	thAcc := thh.NewAccumulator()
	thh.QueryInto(thAcc)
	if got := thAcc.Estimate(); got != n {
		t.Errorf("restored theta estimate %v, want %d", got, n)
	}

	if err := dst.RestoreFile(filepath.Join(t.TempDir(), "absent.ckpt")); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("missing checkpoint error = %v, want fs.ErrNotExist", err)
	}
}

func TestRestoreRejectsCorruptInput(t *testing.T) {
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	if err := reg.Restore(bytes.NewReader([]byte("not a checkpoint"))); !errors.Is(err, snapshot.ErrMagic) {
		t.Errorf("garbage restore error = %v, want snapshot.ErrMagic", err)
	}

	// A structurally valid container with a corrupt family blob fails with
	// the family's typed error, wrapped with record context.
	rec := snapshot.Record{
		Family: snapshot.FamilyTheta, Name: []byte("bad"), Shards: 2,
		Blob: []byte{1, 2, 3},
	}
	ckpt := snapshot.AppendRecord(snapshot.AppendHeader(nil, 1), &rec)
	if err := reg.Restore(bytes.NewReader(ckpt)); !errors.Is(err, theta.ErrCorrupt) {
		t.Errorf("corrupt blob restore error = %v, want theta.ErrCorrupt", err)
	}
}

// TestCheckpointUnderFire checkpoints concurrently with ingest, resizes,
// view toggles and a drop: no data race (CI runs this suite under -race),
// no panic, and every captured checkpoint restores cleanly with a total
// weight bounded by what was ingested.
func TestCheckpointUnderFire(t *testing.T) {
	const writers, perWriter = 4, 15_000
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{Shards: 4, Writers: writers})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	cm := openCountMin(t, reg, "fire.cm")
	openTheta(t, reg, "fire.drop") // a sketch to Drop mid-checkpoint

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				cm.Update(w, uint64(i%127))
			}
		}(w)
	}
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		for s := 1; s <= 6; s++ {
			if err := cm.Resize(s); err != nil {
				t.Errorf("resize under checkpoint fire: %v", err)
				return
			}
			if _, err := reg.ReplaceView("fire.cm", fastsketches.ViewConfig{
				RefreshEvery: time.Millisecond,
			}); err != nil {
				t.Errorf("enable view under checkpoint fire: %v", err)
				return
			}
			reg.StopView("fire.cm")
		}
		reg.Drop("theta", "fire.drop")
	}()

	var ckpt []byte
	for k := 0; k < 40; k++ {
		ckpt = reg.AppendCheckpoint(ckpt[:0])
		dst, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := dst.Restore(bytes.NewReader(ckpt)); err != nil {
			t.Fatalf("checkpoint %d taken under fire does not restore: %v", k, err)
		}
		dstCM := openCountMin(t, dst, "fire.cm")
		acc := dstCM.NewAccumulator()
		dstCM.QueryInto(acc)
		if acc.N() > writers*perWriter {
			t.Fatalf("checkpoint %d holds N=%d > ingested %d", k, acc.N(), writers*perWriter)
		}
		dst.Close()
	}
	wg.Wait()
	<-chaosDone

	// Quiesce and verify the final checkpoint is exact.
	if err := cm.Resize(3); err != nil {
		t.Fatal(err)
	}
	dst, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if err := dst.Restore(bytes.NewReader(reg.AppendCheckpoint(nil))); err != nil {
		t.Fatal(err)
	}
	dstCM := openCountMin(t, dst, "fire.cm")
	acc := dstCM.NewAccumulator()
	dstCM.QueryInto(acc)
	if acc.N() != writers*perWriter {
		t.Errorf("final checkpoint N %d, want exactly %d", acc.N(), writers*perWriter)
	}
}

// TestRestoreReplacesControllers pins the no-leak contract: repeated
// restores with a recorded autoscale policy swap the controller rather than
// stacking one per restore, and closing the registry returns the process to
// its goroutine baseline.
func TestRestoreReplacesControllers(t *testing.T) {
	src := populated(t, 500)
	if _, err := src.ReplaceAutoscale("ck.cm", autoscale.Policy{
		MinShards: 1, MaxShards: 8, HighWater: 1e6,
	}); err != nil {
		t.Fatal(err)
	}
	ckpt := src.AppendCheckpoint(nil)
	src.Close()

	baseline := runtime.NumGoroutine()
	dst, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{Shards: 2, MaxError: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := dst.Restore(bytes.NewReader(ckpt)); err != nil {
			t.Fatal(err)
		}
	}
	if stopped := dst.StopAutoscale("ck.cm"); stopped != 1 {
		t.Errorf("5 restores left %d controllers attached, want 1", stopped)
	}
	dst.Close()

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked by restore: %d > baseline %d",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCheckpointerManualClock drives the periodic loop deterministically:
// each interval elapsing on the injected clock produces a fresh checkpoint
// file, Stop halts the loop, and a post-Close CheckpointNow still writes
// (the shutdown path).
func TestCheckpointerManualClock(t *testing.T) {
	reg := populated(t, 300)
	path := filepath.Join(t.TempDir(), "tick.ckpt")
	mc := autoscale.NewManualClock(time.Unix(1_000_000, 0))
	ck, err := fastsketches.NewCheckpointer(reg, path, time.Minute, mc,
		func(err error) { t.Errorf("checkpoint error: %v", err) })
	if err != nil {
		t.Fatal(err)
	}
	ck.Start()

	if _, err := os.Stat(path); err == nil {
		t.Fatal("checkpoint written before the first interval elapsed")
	}
	// The loop registers its timer asynchronously after Start, so advance
	// repeatedly until the tick lands.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mc.Advance(time.Minute)
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("checkpoint never appeared after the interval elapsed")
		}
		time.Sleep(2 * time.Millisecond)
	}

	ck.Stop()
	ck.Stop() // idempotent

	// After Stop, advancing time writes nothing: delete and verify.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	mc.Advance(10 * time.Minute)
	time.Sleep(20 * time.Millisecond)
	if _, err := os.Stat(path); err == nil {
		t.Fatal("checkpoint written after Stop")
	}

	// Shutdown order: Close then one final CheckpointNow.
	reg.Close()
	if err := ck.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	dst, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{Shards: 2, MaxError: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if err := dst.RestoreFile(path); err != nil {
		t.Fatal(err)
	}
	finalTh := openTheta(t, dst, "ck.theta")
	finalAcc := finalTh.NewAccumulator()
	finalTh.QueryInto(finalAcc)
	if got := finalAcc.Estimate(); got != 300 {
		t.Errorf("final checkpoint theta estimate %v, want 300", got)
	}

	// Config validation.
	if _, err := fastsketches.NewCheckpointer(dst, path, 0, nil, nil); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := fastsketches.NewCheckpointer(dst, "", time.Second, nil, nil); err == nil {
		t.Error("empty path accepted")
	}
}

// FuzzCheckpointRestore throws arbitrary bytes at Registry.Restore: the
// contract is a typed error or a clean import, never a panic, whatever the
// container claims.
func FuzzCheckpointRestore(f *testing.F) {
	seedReg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{Shards: 2, MaxError: 1})
	if err != nil {
		f.Fatal(err)
	}
	th := openTheta(f, seedReg, "fz.t")
	cm := openCountMin(f, seedReg, "fz.cm")
	for i := 0; i < 500; i++ {
		th.Update(0, uint64(i))
		cm.Update(0, uint64(i%17))
	}
	f.Add(seedReg.AppendCheckpoint(nil))
	seedReg.Close()
	f.Add([]byte{})
	f.Add(snapshot.AppendHeader(nil, 3))

	f.Fuzz(func(t *testing.T, data []byte) {
		reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{Shards: 1, Writers: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer reg.Close()
		reg.Restore(bytes.NewReader(data))
	})
}
