// Distributed aggregation — the setting that makes sketch *mergeability*
// matter (PowerDrill, Druid, the systems the paper builds toward).
//
// Several "agent" processes (simulated as goroutines, but speaking real TCP
// over loopback) each ingest their local shard of a stream with a
// *concurrent* Θ sketch — multiple writer goroutines per agent — then
// serialise the result and ship it to an aggregator service. The aggregator
// unions the incoming summaries and answers global distinct-count queries.
//
// Two things compose here:
//
//   - within an agent: the paper's concurrent framework parallelises
//     ingestion across cores;
//   - across agents: Θ mergeability aggregates the shards with error
//     independent of how the stream was partitioned.
package main

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"fastsketches"
	"fastsketches/internal/theta"
)

const (
	agents          = 5
	writersPerAgent = 2
	uniquesPerAgent = 200_000
	overlapPerShard = 50_000 // keys shared with the next shard
)

// runAggregator accepts one serialised sketch per agent, unions them, and
// reports the global estimate on done.
func runAggregator(ln net.Listener, done chan<- float64) {
	union := fastsketches.ThetaUnion(12, 0)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < agents; i++ {
		conn, err := ln.Accept()
		if err != nil {
			panic(err)
		}
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			// Frame: uint32 length + payload.
			var lenBuf [4]byte
			if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
				panic(err)
			}
			payload := make([]byte, binary.LittleEndian.Uint32(lenBuf[:]))
			if _, err := io.ReadFull(conn, payload); err != nil {
				panic(err)
			}
			sk, err := theta.UnmarshalQuickSelect(payload)
			if err != nil {
				panic(err)
			}
			mu.Lock()
			union.Add(sk)
			mu.Unlock()
		}(conn)
	}
	wg.Wait()
	done <- union.Estimate()
}

// runAgent ingests its shard concurrently and ships the summary.
func runAgent(id int, addr string) {
	// Shards overlap: agent i covers [i·(u−o), i·(u−o)+u).
	base := uint64(id) * uint64(uniquesPerAgent-overlapPerShard)

	sk, err := fastsketches.NewConcurrentTheta(fastsketches.ThetaConfig{
		LgK: 12, Writers: writersPerAgent, MaxError: 0.04,
	})
	if err != nil {
		panic(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < writersPerAgent; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < uniquesPerAgent; i += writersPerAgent {
				sk.Update(w, base+uint64(i))
			}
		}(w)
	}
	wg.Wait()
	sk.Close()

	payload, err := sk.Result().MarshalBinary()
	if err != nil {
		panic(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		panic(err)
	}
	defer conn.Close()
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(payload)))
	if _, err := conn.Write(lenBuf[:]); err != nil {
		panic(err)
	}
	if _, err := conn.Write(payload); err != nil {
		panic(err)
	}
	fmt.Printf("agent %d: shard [%d, %d) → local estimate %.0f, shipped %d bytes\n",
		id, base, base+uint64(uniquesPerAgent), sk.Estimate(), len(payload))
}

func main() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer ln.Close()
	done := make(chan float64, 1)
	go runAggregator(ln, done)

	var wg sync.WaitGroup
	for id := 0; id < agents; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			runAgent(id, ln.Addr().String())
		}(id)
	}
	wg.Wait()

	got := <-done
	// True union: shards overlap by overlapPerShard with each neighbour.
	truth := float64(agents*uniquesPerAgent - (agents-1)*overlapPerShard)
	fmt.Printf("\nglobal distinct estimate: %.0f (truth %.0f, error %+.2f%%)\n",
		got, truth, (got/truth-1)*100)
}
