// Distributed aggregation — the setting that makes sketch *mergeability*
// matter (PowerDrill, Druid, the systems the paper builds toward), now on
// the production serving stack instead of ad-hoc wire code.
//
// An aggregator service (sketchd: internal/server over a Registry) listens
// on real loopback TCP. Several "agent" processes (simulated as goroutines)
// each own a shard of the stream and ship it with the fastsketches/client
// library: every agent runs multiple concurrent sender goroutines, each
// buffering updates into batches that the server fans into the concurrent
// sketch's writer lanes. Global distinct-count queries are answered live by
// merging per-shard snapshots server-side.
//
// Three layers of the paper's story compose here:
//
//   - within a sketch: the concurrent framework parallelises ingestion
//     across writer lanes (the server's lane fan-in drives them);
//   - across agents: mergeability aggregates overlapping shards with error
//     independent of how the stream was partitioned — all agents write the
//     same named sketch, and the Θ merge dedupes the overlap;
//   - across the network: batched ingest amortises round trips, and a
//     served query carries the same S·r staleness bound as an in-process
//     merged query.
package main

import (
	"fmt"
	"net"
	"sync"

	"fastsketches"
	"fastsketches/client"
	"fastsketches/internal/server"
)

const (
	agents          = 5
	sendersPerAgent = 2
	uniquesPerAgent = 200_000
	overlapPerShard = 50_000 // keys shared with the next shard
	sketchName      = "global.users"
)

// runAgent streams its shard of the key space to the aggregator through
// the client library: sendersPerAgent concurrent goroutines, each with its
// own batch buffer (and so its own server-side lane fan-in).
func runAgent(id int, addr string) {
	// Shards overlap: agent i covers [i·(u−o), i·(u−o)+u).
	base := uint64(id) * uint64(uniquesPerAgent-overlapPerShard)

	cl, err := client.Dial(addr, client.Options{Conns: sendersPerAgent, BatchSize: 8192})
	if err != nil {
		panic(err)
	}
	defer cl.Close()

	var wg sync.WaitGroup
	for s := 0; s < sendersPerAgent; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			b := cl.NewBatch(client.Theta, sketchName)
			for i := s; i < uniquesPerAgent; i += sendersPerAgent {
				if err := b.Add(base + uint64(i)); err != nil {
					panic(err)
				}
			}
			if err := b.Flush(); err != nil {
				panic(err)
			}
		}(s)
	}
	wg.Wait()

	// Every batch is acked: the agent's updates are *completed*, covered by
	// the served query's S·r staleness bound from here on.
	local, err := cl.ThetaEstimate(sketchName)
	if err != nil {
		panic(err)
	}
	fmt.Printf("agent %d: shard [%d, %d) shipped; live global estimate so far %.0f\n",
		id, base, base+uint64(uniquesPerAgent), local)
}

func main() {
	// The aggregator: a registry served over TCP. Writer lanes match the
	// per-agent sender count; 4 shards buy ingest parallelism at a
	// 4·r staleness window for merged queries.
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{
		Shards: 4, Writers: sendersPerAgent,
	})
	if err != nil {
		panic(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	srv := server.New(reg)
	go srv.Serve(ln)

	var wg sync.WaitGroup
	for id := 0; id < agents; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			runAgent(id, ln.Addr().String())
		}(id)
	}
	wg.Wait()

	// Final answer over a fresh client, then a graceful drain.
	cl, err := client.Dial(ln.Addr().String(), client.Options{Conns: 1})
	if err != nil {
		panic(err)
	}
	got, err := cl.ThetaEstimate(sketchName)
	if err != nil {
		panic(err)
	}
	inf, err := cl.Info(client.Theta, sketchName)
	if err != nil {
		panic(err)
	}
	cl.Close()
	srv.Shutdown()
	reg.Close()

	// True union: shards overlap by overlapPerShard with each neighbour.
	truth := float64(agents*uniquesPerAgent - (agents-1)*overlapPerShard)
	fmt.Printf("\nglobal distinct estimate: %.0f (truth %.0f, error %+.2f%%; served at S=%d, staleness ≤ %d)\n",
		got, truth, (got/truth-1)*100, inf.Shards, inf.Relaxation)
}
