// Materialized views — buying O(1)-in-S query latency with a refresh
// interval of staleness.
//
// A merged query on a sharded sketch folds one wait-free snapshot per
// shard: O(S) work per query, the right default for occasionally-queried
// sketches and the wrong one for a dashboard polling a wide sketch a
// thousand times a second. Registry.EnableView moves the fold off the
// query path: a background refresher folds the sketch's entire published
// state into a double-buffered merged accumulator every RefreshEvery and
// publishes it atomically; queries then fold that single accumulator —
// constant cost in S, still zero allocations — and pay at most one
// refresh interval of extra staleness on top of the merged bound S·r.
//
// The demo ingests into an 8-shard Θ sketch, times a polling burst
// against the live O(S) fold, enables a 20ms view and times the same
// burst again, then shows the price: Info reports the view's refresh lag
// (the extra staleness term) alongside the relaxation bound, and fresh
// ingest only becomes visible once the next refresh folds it.
package main

import (
	"fmt"
	"time"

	"fastsketches"
)

const writers = 4

func main() {
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{
		Shards:  8,
		Writers: writers,
	})
	if err != nil {
		panic(err)
	}
	defer reg.Close()

	h, err := reg.OpenTheta("dashboard/users", fastsketches.Spec{})
	if err != nil {
		panic(err)
	}
	users := h.Sketch()
	const ingested = 200_000
	for i := 0; i < ingested; i++ {
		users.Update(i%writers, uint64(i))
	}

	poll := func(label string) float64 {
		const polls = 2000
		start := time.Now()
		var est float64
		for i := 0; i < polls; i++ {
			est = users.Estimate()
		}
		perQuery := time.Since(start) / polls
		fmt.Printf("%-28s %8v/query   estimate %.0f\n", label, perQuery, est)
		return float64(perQuery)
	}

	liveNs := poll("live fold (O(S), S=8):")

	// Enable the view: one synchronous refresh (so a view is available
	// immediately), then a background refresher every 20ms.
	n, err := reg.ReplaceView("dashboard/users", fastsketches.ViewConfig{
		RefreshEvery: 20 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nview enabled on %d sketch(es) under the name\n", n)

	viewNs := poll("through the view (O(1)):")
	fmt.Printf("speedup %.1fx; the O(S) fold now runs on the refresher, not per query\n\n",
		liveNs/viewNs)

	// The price: freshness. New ingest is invisible to the view until the
	// next refresh folds it — bounded by S·r plus one refresh interval.
	inf, _ := reg.Info("theta", "dashboard/users")
	fmt.Printf("staleness bound: S·r = %d completed updates + view lag (now %v)\n",
		inf.Relaxation, inf.ViewLag)
	for i := 0; i < 50_000; i++ {
		users.Update(i%writers, uint64(ingested+i))
	}
	fmt.Printf("right after +50k ingest:     estimate %.0f (view may trail by up to the bound)\n",
		users.Estimate())
	time.Sleep(50 * time.Millisecond) // > one refresh interval
	fmt.Printf("one refresh interval later:  estimate %.0f (the refresher folded the new state)\n\n",
		users.Estimate())

	// Disable: queries return to the live fold, fully fresh, O(S) again.
	reg.StopView("dashboard/users")
	fmt.Println("view disabled — queries fold live snapshots again")
	fmt.Println("\nThe trade mirrors the paper's: sharding bought ingest throughput with")
	fmt.Println("merged-query staleness (S·r); the view buys query throughput with one")
	fmt.Println("refresh interval more. Both bounds are load-bearing and asserted under")
	fmt.Println("-race (TestStressViewUnderFire).")
}
