// Latency-percentile dashboard — the Quantiles-sketch use case.
//
// Simulated request handlers on several goroutines record response
// latencies into a concurrent Quantiles sketch; a dashboard goroutine polls
// p50/p95/p99 live, exactly the "query while building" capability the paper
// adds to sketches. Midway through, the simulated backend degrades and the
// dashboard watches the tail move — with no pause in ingestion.
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"fastsketches"
)

func main() {
	const handlers = 4
	const requestsPerHandler = 300_000

	q, err := fastsketches.NewConcurrentQuantiles(fastsketches.QuantilesConfig{
		K:       256, // rank error well under 1%
		Writers: handlers,
	})
	if err != nil {
		panic(err)
	}

	var degraded atomic.Bool

	// latency draws a log-normal-ish latency in milliseconds; the degraded
	// regime doubles the median and fattens the tail.
	latency := func(rng *rand.Rand) float64 {
		base := 8.0 * (0.5 + rng.Float64()) // 4–12 ms body
		if rng.Float64() < 0.02 {
			base *= 10 // occasional slow path
		}
		if degraded.Load() {
			base *= 2
			if rng.Float64() < 0.05 {
				base *= 8 // retries pile up
			}
		}
		return base
	}

	stop := make(chan struct{})
	var dash sync.WaitGroup
	dash.Add(1)
	go func() {
		defer dash.Done()
		tick := time.NewTicker(40 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				s := q.Snapshot() // one consistent view for all three reads
				if s.N() == 0 {
					continue
				}
				fmt.Printf("n=%8d  p50=%6.1fms  p95=%6.1fms  p99=%6.1fms\n",
					s.N(), s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99))
			}
		}
	}()

	var wg sync.WaitGroup
	for h := 0; h < handlers; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(h) + 1))
			for i := 0; i < requestsPerHandler; i++ {
				if h == 0 && i == requestsPerHandler/2 {
					degraded.Store(true) // backend starts struggling
				}
				q.Update(h, latency(rng))
			}
		}(h)
	}
	wg.Wait()
	close(stop)
	dash.Wait()
	q.Close()

	final := q.Snapshot()
	fmt.Printf("\nfinal: n=%d  min=%.1fms  p50=%.1fms  p90=%.1fms  p99=%.1fms  max=%.1fms\n",
		final.N(), final.Min(), final.Quantile(0.5), final.Quantile(0.9),
		final.Quantile(0.99), final.Max())
	fmt.Printf("rank of 100ms SLA: %.2f%% of requests were faster\n", final.Rank(100)*100)
	fmt.Printf("a live query may have trailed ingestion by ≤ %d requests (relaxation)\n", q.Relaxation())
}
