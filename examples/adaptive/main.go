// Adaptive small-stream behaviour — a tour of the machinery of Section 5.3
// and Section 6 of the paper, using the library's internal packages the way
// the evaluation does.
//
// It demonstrates, on one small program:
//
//  1. why relaxation hurts small streams (query a no-eager sketch mid-stream
//     and watch the missing-buffer deficit);
//  2. how the eager phase repairs it (same queries, exact answers);
//  3. the error bounds of Table 1 recomputed live via the adversary
//     simulator, so the numbers in the paper can be checked in seconds.
package main

import (
	"fmt"

	"fastsketches"
	"fastsketches/internal/adversary"
	"fastsketches/internal/stats"
)

func main() {
	fmt.Println("== 1. no eager phase: live queries on a small stream miss buffered updates ==")
	noEager, err := fastsketches.NewConcurrentTheta(fastsketches.ThetaConfig{
		LgK: 12, Writers: 1, MaxError: 1.0 /* eager disabled */, BufferSize: 16,
	})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 100; i++ {
		noEager.Update(0, uint64(i))
		if (i+1)%20 == 0 {
			est := noEager.Estimate()
			fmt.Printf("  fed %3d   live estimate %3.0f   (deficit %2.0f, bound r=%d)\n",
				i+1, est, float64(i+1)-est, noEager.Relaxation())
		}
	}
	noEager.Close()

	fmt.Println("\n== 2. eager phase (e=0.04): the same queries are exact up to 2/e² = 1250 ==")
	eager, err := fastsketches.NewConcurrentTheta(fastsketches.ThetaConfig{
		LgK: 12, Writers: 1, MaxError: 0.04,
	})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 100; i++ {
		eager.Update(0, uint64(i))
		if (i+1)%20 == 0 {
			fmt.Printf("  fed %3d   live estimate %3.0f\n", i+1, eager.Estimate())
		}
	}
	eager.Close()

	fmt.Println("\n== 3. Table 1 recomputed: error of an r-relaxed Θ sketch, k=2^10, r=8, n=2^15 ==")
	rows := adversary.Table1(1<<15, 1<<10, 8, 20_000, 1)
	n := float64(1 << 15)
	fmt.Printf("  %-18s %12s %8s %10s\n", "estimator", "E[est]/n", "RSE", "paper")
	paper := map[string]string{
		"sequential":       "RSE ≤ 3.1%",
		"strong adversary": "E≈0.995n, RSE ≤ 3.8%",
		"weak adversary":   "E=n(k−1)/(k+r−1), RSE ≤ 2·3.1%",
	}
	for _, r := range rows {
		fmt.Printf("  %-18s %12.4f %7.2f%% %s\n", r.Name, r.MeanEstimate/n, r.RSE*100, paper[r.Name])
	}
	fmt.Printf("\n  closed-form weak expectation: %.1f (n·(k−1)/(k+r−1))\n",
		stats.WeakAdversaryExpectation(n, 1<<10, 8))
	fmt.Printf("  sequential RSE bound 1/√(k−2): %.4f\n", stats.SeqRSEBound(1<<10))
	fmt.Printf("  weak-adversary RSE bound:      %.4f (≤ 2× sequential for r ≤ √(k−2))\n",
		stats.WeakAdversaryRSEBound(1<<10, 8))
}
