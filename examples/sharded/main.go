// Sharded multi-tenant registry — the service skeleton the ROADMAP's
// "millions of users" north star calls for.
//
// One Registry serves many named sketches behind a single API. Each named
// sketch is striped across S independent concurrent sketches (each with its
// own propagator and writer lanes, exactly the paper's OptParSketch), and
// queries merge per-shard snapshots on demand:
//
//   - ingestion scales with S: one background propagator per shard, small
//     per-shard writer counts;
//   - merged queries are wait-free and stay live during ingestion, missing
//     at most S·r = S·2·N·b completed updates (the combined relaxation
//     bound — the paper's Theorem 1 applied shard-wise and summed);
//   - per-key queries (Count-Min frequencies) touch only the owning shard
//     and keep the tighter single-shard bound r;
//   - readers that want to avoid even the pooled accumulator can own one:
//     NewAccumulator + QueryInto give a zero-allocation merged query per
//     reader goroutine (see the monitor below);
//   - the shard count is live-tunable: Registry.ResizeTheta (and the other
//     family facades) reshards a named sketch under full write fire — see
//     examples/resharding for that walkthrough.
//
// The walkthrough simulates a tiny analytics service: per-tenant unique
// visitors (Θ), request latency quantiles, and per-endpoint hit counts,
// ingested by several writer goroutines while a monitor goroutine reads
// merged live values.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"fastsketches"
)

const (
	shards  = 4
	writers = 4
	perLane = 100_000
)

func main() {
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{
		Shards:   shards,
		Writers:  writers,
		MaxError: 0.04, // exact answers until each shard's substream exceeds 2/e²
	})
	if err != nil {
		panic(err)
	}

	// Tenants are created lazily on first Open — no schema, just names and
	// an (empty here) declarative Spec.
	visitorsH, err := reg.OpenTheta("tenant-42/visitors", fastsketches.Spec{})
	if err != nil {
		panic(err)
	}
	latencyH, err := reg.OpenQuantiles("tenant-42/latency-ms", fastsketches.Spec{})
	if err != nil {
		panic(err)
	}
	endpointsH, err := reg.OpenCountMin("tenant-42/endpoint-hits", fastsketches.Spec{})
	if err != nil {
		panic(err)
	}
	visitors, latency, endpoints := visitorsH.Sketch(), latencyH.Sketch(), endpointsH.Sketch()

	fmt.Printf("registry: %d shards × %d lanes; merged-query staleness ≤ S·r = %d updates (Θ)\n",
		shards, writers, visitors.Relaxation())

	var completed atomic.Int64
	stop := make(chan struct{})

	// Monitor: live merged queries while ingestion runs. Wait-free — it
	// never blocks a propagator or a writer. The visitors query goes
	// through the caller-owned plane: one Union accumulator owned by this
	// goroutine, reset and refolded by QueryInto on every report, so the
	// monitor allocates nothing however often it polls (the pooled query
	// methods used for latency/endpoints are equally allocation-free, just
	// pool-managed).
	var monitorWG sync.WaitGroup
	monitorWG.Add(1)
	go func() {
		defer monitorWG.Done()
		visitorsAcc := visitors.NewAccumulator()
		lastReport := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if done := completed.Load(); done-lastReport >= int64(perLane*writers/4) {
				lastReport = done
				visitors.QueryInto(visitorsAcc)
				fmt.Printf("  live @ %7d updates/stream: visitors≈%8.0f  p99≈%6.1fms  /checkout=%d\n",
					done, visitorsAcc.Estimate(), latency.Quantile(0.99),
					endpoints.EstimateString("/checkout"))
			}
			runtime.Gosched() // don't busy-steal cycles from the writers
		}
	}()

	// Writers: lane w of every sketch is owned by goroutine w.
	endpointNames := []string{"/", "/login", "/search", "/checkout"}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 40
			for i := 0; i < perLane; i++ {
				visitors.Update(w, base+uint64(i))            // unique user IDs
				latency.Update(w, float64((i*i)%200)+1)       // deterministic spread
				endpoints.UpdateString(w, endpointNames[i%4]) // hot endpoints
				completed.Add(1)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	monitorWG.Wait()

	// Close drains every shard: afterwards merged queries have no
	// relaxation residue and summarise the full streams.
	reg.Close()

	n := float64(writers * perLane)
	fmt.Println("\nafter Close (exact drain):")
	fmt.Printf("  visitors: estimate %.0f of %d true uniques (RE %+.4f)\n",
		visitors.Estimate(), writers*perLane, visitors.Estimate()/n-1)
	fmt.Printf("  latency:  N=%d  p50=%.0fms  p99=%.0fms\n",
		latency.N(), latency.Quantile(0.5), latency.Quantile(0.99))
	fmt.Printf("  endpoints: /checkout=%d (true %d, one-sided error ≤ ε·N per shard)\n",
		endpoints.EstimateString("/checkout"), writers*perLane/4)
	fmt.Printf("  tenants registered: %v\n", reg.Names())
}
