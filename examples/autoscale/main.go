// Autoscaling — closing the control loop over the relaxation parameter.
//
// Choosing the shard count S is choosing a point on the paper's
// throughput/staleness trade-off: merged queries miss at most S·r = S·2·N·b
// completed updates while ingest scales with S parallel propagators. Live
// resharding (examples/resharding) made that point movable; this
// walkthrough hands the steering to a policy. Registry.Autoscale attaches
// a controller that samples the sketch's ingest-pressure counters — items
// entering the propagation plane, and the propagator backlog — and walks S
// through Resize under hysteresis rules: scale up when the per-shard rate
// has exceeded the high-water mark for enough consecutive samples, scale
// down when sustained idleness leaves the backlog empty, never flap
// (separated water marks, sustained streaks, a cooldown between resizes),
// and never let a transition's combined staleness window S_old·r + S_new·r
// exceed the policy cap.
//
// The demo is an API-gateway shape: a Count-Min sketch counts requests per
// endpoint while traffic bursts and lulls. Count-Min never pre-filters, so
// every request exerts propagation pressure — which is exactly the
// pressure more shards parallelise. Watch S climb under the burst and
// settle back during the lull, with the staleness bound S·r moving in
// lockstep.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fastsketches"
	"fastsketches/internal/autoscale"
)

const writers = 4

func main() {
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{
		Shards:  2,
		Writers: writers,
	})
	if err != nil {
		panic(err)
	}
	defer reg.Close()

	h, err := reg.OpenCountMin("gateway/requests", fastsketches.Spec{})
	if err != nil {
		panic(err)
	}
	requests := h.Sketch()

	// The policy: per-shard ingest above 200k req/s sustained for two
	// 25ms samples doubles S (up to 8); per-shard ingest below 25k req/s
	// with a drained backlog for two samples halves it (down to 2). The
	// transitional staleness window of any resize is capped at 16·r.
	// (A policy that doesn't depend on the live sketch could equally ride
	// along declaratively as Spec.Autoscale on the Open call above.)
	if err := h.Autoscale(autoscale.Policy{
		MinShards: 2, MaxShards: 8,
		HighWater: 200e3, LowWater: 25e3,
		SustainedUp: 2, SustainedDown: 2,
		SampleEvery:               25 * time.Millisecond,
		Cooldown:                  75 * time.Millisecond,
		MaxTransitionalRelaxation: 16 * requests.ShardRelaxation(),
	}); err != nil {
		panic(err)
	}

	// Traffic: all writers hammer hot endpoints for 700ms (the burst), then
	// trickle for the rest of the run (the lull).
	var sent atomic.Int64
	var lull atomic.Bool
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				for j := uint64(0); j < 64; j++ {
					requests.Update(w, (i*64+j)%512) // 512 hot endpoints
				}
				sent.Add(64)
				if lull.Load() {
					time.Sleep(10 * time.Millisecond)
				}
			}
		}(w)
	}

	fmt.Println("   t      req/s   S   S·r   phase")
	start := time.Now()
	last := int64(0)
	for time.Since(start) < 1800*time.Millisecond {
		time.Sleep(100 * time.Millisecond)
		if !lull.Load() && time.Since(start) > 700*time.Millisecond {
			lull.Store(true)
		}
		now := sent.Load()
		phase := "burst"
		if lull.Load() {
			phase = "lull"
		}
		fmt.Printf("%5dms %9.0f %3d %5d   %s\n",
			time.Since(start).Milliseconds(), float64(now-last)/0.1,
			requests.Shards(), requests.Relaxation(), phase)
		last = now
	}
	close(stop)
	wg.Wait()

	st, _ := h.AutoscaleStats()
	fmt.Printf("\ncontroller: %d samples, %d scale-ups, %d scale-downs, final S=%d\n",
		st.Samples, st.ScaleUps, st.ScaleDowns, requests.Shards())
	fmt.Printf("total requests counted: %d (N() = %d, within the live staleness bound)\n",
		sent.Load(), requests.N())
	fmt.Println("\nThe controller saw the burst push per-shard pressure past the high-water")
	fmt.Println("mark and bought throughput with staleness (S up, S·r up); the lull let it")
	fmt.Println("buy freshness back (S down, S·r down) — the paper's trade-off, driven live.")
}
