// Live resharding — moving a running service along the throughput/staleness
// trade-off without restarting it.
//
// The shard count S is the paper's relaxation bound made operational: a
// merged query over a sharded sketch misses at most S·r = S·2·N·b completed
// updates, while ingest throughput grows with S (one background propagator
// per shard). A service whose load shifts — a tenant going viral, a nightly
// lull — wants to walk that trade-off live. Handle.Resize (on the typed
// handle Registry.OpenTheta returns) does exactly that: it builds a new shard group,
// atomically swaps the routing epoch while writers keep writing, drains the
// old shards' final snapshots into a retained legacy state, and retires
// them. Merged queries stay wait-free throughout and never lose or
// double-count a retired update; during the swap their staleness bound is
// transiently S_old·r + S_new·r, then settles at the new S·r.
//
// This walkthrough grows a distinct-count sketch from 2 to 8 shards under
// full write fire, then collapses it back to 2, printing the live estimate,
// its drift from the ground truth, and the relaxation bound as S moves.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fastsketches"
)

const writers = 4

func main() {
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{
		Shards:  2,
		Writers: writers,
	})
	if err != nil {
		panic(err)
	}
	defer reg.Close()

	h, err := reg.OpenTheta("tenant-42/visitors", fastsketches.Spec{})
	if err != nil {
		panic(err)
	}
	visitors := h.Sketch()

	// Writers ingest distinct keys non-stop; completed counts the ground
	// truth the live estimates are compared against.
	var completed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 40
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				visitors.Update(w, base+i)
				completed.Add(1)
			}
		}(w)
	}

	// A reader goroutine could equally run merged queries concurrently —
	// they are wait-free on every path, including mid-resize. Here the main
	// goroutine reports, resizes, and reports again.
	report := func(phase string) {
		done := completed.Load()
		est := visitors.Estimate()
		fmt.Printf("%-22s S=%d  staleness ≤ %5d  ingested=%9d  estimate=%9.0f  drift=%+.2f%%\n",
			phase, visitors.Shards(), visitors.Relaxation(), done, est,
			100*(est/float64(done)-1))
	}

	settle := func() { time.Sleep(250 * time.Millisecond) }

	settle()
	report("2 shards (initial)")

	// Grow 2→8 for ingest throughput. Resize returns once the old epoch is
	// fully drained; writers never stopped.
	start := time.Now()
	if err := h.Resize(8); err != nil {
		panic(err)
	}
	fmt.Printf("resized 2→8 in %v (writers live throughout)\n", time.Since(start).Round(time.Microsecond))
	settle()
	report("8 shards (grown)")

	// Shrink 8→2 for fresher merged reads: the staleness bound S·r drops
	// back, at the cost of fewer parallel propagators.
	start = time.Now()
	if err := h.Resize(2); err != nil {
		panic(err)
	}
	fmt.Printf("resized 8→2 in %v\n", time.Since(start).Round(time.Microsecond))
	settle()
	report("2 shards (shrunk)")

	close(stop)
	wg.Wait()

	// After Close every buffer is drained: the merged estimate summarises
	// the entire stream — including everything that travelled through two
	// retired epochs — with no relaxation residue, only the Θ sampling
	// error.
	reg.Close()
	done := completed.Load()
	est := visitors.Estimate()
	fmt.Printf("%-22s ingested=%9d  estimate=%9.0f  drift=%+.2f%% (sampling error only)\n",
		"closed (exact drain)", done, est, 100*(est/float64(done)-1))
}
