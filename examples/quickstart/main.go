// Quickstart: the smallest useful program — count distinct elements in a
// stream with multiple concurrent writers and query the estimate live while
// ingestion is running.
//
// Where to go next: examples/sharded runs many named sketches behind the
// sharded Registry (including the zero-allocation QueryInto query plane
// for readers that own their merge accumulator), and examples/resharding
// shows Registry.ResizeTheta live-resizing a sketch's shard group — the
// throughput/staleness dial — under full write load.
package main

import (
	"fmt"
	"sync"
	"time"

	"fastsketches"
)

func main() {
	const writers = 4
	const perWriter = 500_000

	sk, err := fastsketches.NewConcurrentTheta(fastsketches.ThetaConfig{
		LgK:      12, // k = 4096 samples → RSE ≈ 1.6%
		Writers:  writers,
		MaxError: 0.04, // stay exact until 2/0.04² = 1250 elements
	})
	if err != nil {
		panic(err)
	}

	// Live queries: a reporting goroutine reads the estimate while the
	// writers are still ingesting — no locks, no coordination.
	stop := make(chan struct{})
	var reporter sync.WaitGroup
	reporter.Add(1)
	go func() {
		defer reporter.Done()
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				fmt.Printf("live estimate: %.0f distinct\n", sk.Estimate())
			}
		}
	}()

	// Each writer goroutine owns one ingestion lane and feeds disjoint keys.
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 40
			for i := 0; i < perWriter; i++ {
				sk.Update(w, base+uint64(i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	reporter.Wait()

	// Close drains every buffered update; the final estimate reflects the
	// whole stream.
	sk.Close()
	est := sk.Estimate()
	truth := float64(writers * perWriter)
	lo, hi := sk.ConfidenceBounds(2)
	fmt.Printf("final estimate: %.0f (truth %.0f, error %+.2f%%)\n", est, truth, (est/truth-1)*100)
	fmt.Printf("95%% interval:   [%.0f, %.0f]\n", lo, hi)
	fmt.Printf("relaxation r:   a query may trail ingestion by ≤ %d updates\n", sk.Relaxation())
}
