// Network-flow cardinality monitoring — the paper's motivating analytics
// use case (unique-count sketches in Druid-style real-time pipelines).
//
// Several collector goroutines ingest synthetic NetFlow-like records (one
// lane per collector). The program tracks, live and without blocking the
// collectors:
//
//   - the number of distinct source IPs (concurrent Θ sketch);
//   - an anomaly heuristic: per-epoch distinct-count jumps (Θ set
//     operations on epoch snapshots — union, intersection, difference);
//   - distinct destination ports per epoch (concurrent HLL, smaller memory).
//
// The set-operation post-processing runs on closed epoch sketches, showing
// how concurrent ingestion and sequential analytics compose.
package main

import (
	"fmt"
	"math/rand"
	"sync"

	"fastsketches"
	"fastsketches/internal/stream"
)

// flowRecord is a synthetic 5-tuple-ish record.
type flowRecord struct {
	srcIP   uint64
	dstPort uint64
}

// epochStreams builds the flow records of one measurement epoch. Epoch 2
// simulates a scanning attack: a burst of fresh source addresses.
func epochStreams(epoch int, flowsPerEpoch int, rng *rand.Rand) []flowRecord {
	recs := make([]flowRecord, flowsPerEpoch)
	// Normal traffic draws sources from a stable population with Zipf skew
	// (a few heavy talkers, many occasional ones).
	srcPop := stream.Zipf(flowsPerEpoch, 200_000, 1.2, int64(epoch)+7)
	for i := range recs {
		recs[i] = flowRecord{
			srcIP:   srcPop[i],
			dstPort: uint64(rng.Intn(2000)), // common service ports
		}
	}
	if epoch == 2 {
		// Attack: 30% of records come from never-seen-before addresses
		// hitting random high ports.
		for i := 0; i < len(recs)/3; i++ {
			recs[i].srcIP = 1<<32 + uint64(epoch)<<20 + uint64(i)
			recs[i].dstPort = uint64(10_000 + rng.Intn(50_000))
		}
	}
	return recs
}

func main() {
	const (
		collectors    = 4
		flowsPerEpoch = 400_000
		epochs        = 4
	)
	rng := rand.New(rand.NewSource(42))

	// A long-lived sketch over all epochs: "how many distinct sources has
	// this link seen today?"
	allTime, err := fastsketches.NewConcurrentTheta(fastsketches.ThetaConfig{
		LgK: 12, Writers: collectors, MaxError: 0.04,
	})
	if err != nil {
		panic(err)
	}

	var prevEpoch *fastsketches.ConcurrentTheta
	fmt.Println("epoch  distinct_src  new_vs_prev  returning  distinct_ports  verdict")
	for epoch := 0; epoch < epochs; epoch++ {
		recs := epochStreams(epoch, flowsPerEpoch, rng)

		// Per-epoch sketches: sources (Θ, supports set ops) and ports (HLL).
		epochSrc, err := fastsketches.NewConcurrentTheta(fastsketches.ThetaConfig{
			LgK: 12, Writers: collectors, MaxError: 0.04,
		})
		if err != nil {
			panic(err)
		}
		ports, err := fastsketches.NewConcurrentHLL(fastsketches.HLLConfig{
			P: 12, Writers: collectors,
		})
		if err != nil {
			panic(err)
		}

		// Collectors split the record stream.
		var wg sync.WaitGroup
		per := len(recs) / collectors
		for c := 0; c < collectors; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for _, r := range recs[c*per : (c+1)*per] {
					allTime.Update(c, r.srcIP)
					epochSrc.Update(c, r.srcIP)
					ports.Update(c, r.dstPort)
				}
			}(c)
		}
		wg.Wait()
		epochSrc.Close()
		ports.Close()

		distinct := epochSrc.Estimate()
		newSrc, returning := 0.0, 0.0
		if prevEpoch != nil {
			// Θ set operations on the closed epoch sketches.
			newSrc = fastsketches.ThetaAnotB(epochSrc.Result(), prevEpoch.Result()).Estimate()
			returning = fastsketches.ThetaIntersect(epochSrc.Result(), prevEpoch.Result()).Estimate()
		}
		verdict := "ok"
		// Normal epochs churn over half their sources (Zipf tails rotate);
		// a scan shows up as BOTH a cardinality jump and >70% fresh sources.
		if prevEpoch != nil && newSrc > 0.7*distinct && distinct > 2*prevEpoch.Estimate() {
			verdict = "ALERT: address churn spike (possible scan)"
		}
		fmt.Printf("%5d  %12.0f  %11.0f  %9.0f  %14.0f  %s\n",
			epoch, distinct, newSrc, returning, ports.Estimate(), verdict)
		prevEpoch = epochSrc
	}

	allTime.Close()
	fmt.Printf("\nall-time distinct sources: %.0f\n", allTime.Estimate())
}
