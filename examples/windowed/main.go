// Sliding windows and time decay — serving the recent past from the same
// ingest path that serves all of history.
//
// Cumulative sketches never forget, but most serving questions are about
// the last hour, not the last year. Declaring Spec.Window turns a sketch
// windowed: a clock-rotated ring of Slots closed per-interval
// sub-sketches plus the live interval the shards are ingesting into. The
// Window* query verbs answer over that ring; the cumulative verbs keep
// answering over everything ever ingested. One update feeds both planes.
//
// Each rotation closes the live interval with an exact drain (the same
// epoch machinery a live resize uses), folds it into the ring, expels the
// oldest slot once the ring is full, and refreshes a materialized
// suffix-merge — so windowed queries stay O(1) and zero-alloc, paying
// S·r plus at most one rotation interval of expulsion lag. Count-Min can
// additionally declare Decay ∈ (0,1): a count observed k rotations ago
// then contributes with weight Decay^k (DecayedCount), maintained by one
// scale-and-fold per rotation, not per update.
//
// The demo uses a long Interval and drives rotations explicitly with
// RotateNow, standing in for the wall-clock rotator, so the printed
// numbers are deterministic.
package main

import (
	"fmt"
	"time"

	"fastsketches"
)

const writers = 4

func main() {
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{
		Shards:  4,
		Writers: writers,
	})
	if err != nil {
		panic(err)
	}
	defer reg.Close()

	// A 3-slot decayed window on a Count-Min sketch: "requests per API key,
	// over the last 3 intervals" next to "…ever" and "…recency-weighted".
	h, err := reg.OpenCountMin("api/requests", fastsketches.Spec{
		Window: &fastsketches.WindowConfig{
			Interval: time.Hour, // rotated manually below
			Slots:    3,
			Decay:    0.5,
		},
	})
	if err != nil {
		panic(err)
	}
	cm := h.Sketch()

	const key = 42
	show := func(when string) {
		win, _ := cm.WindowCount(key)
		dec, _ := cm.DecayedCount(key)
		fmt.Printf("%-34s window=%-6d decayed=%-6d cumulative=%d\n",
			when, win, dec, cm.Estimate(key))
	}

	// Four intervals of traffic for one key: a burst, then decline.
	for i, n := range []int{8000, 4000, 2000, 1000} {
		for j := 0; j < n; j++ {
			cm.Update(j%writers, key)
		}
		h.RotateNow() // close the interval exactly into the ring
		show(fmt.Sprintf("after interval %d (%d reqs):", i+1, n))
	}

	// The 8000-burst has been expelled from the 3-slot window (4000+2000+
	// 1000 = 7000) and nearly decayed away, but the cumulative plane still
	// counts all 15000. Live-interval traffic shows up in both immediately
	// (relaxed by at most S·r buffered updates until the next drain):
	for j := 0; j < 500; j++ {
		cm.Update(j%writers, key)
	}
	show("mid live interval (+500):")

	// The same declaration works for every family — decay is Count-Min-only
	// (it needs linearly scalable counters), so the other families declare
	// windows without it.
	th, err := reg.OpenTheta("api/clients", fastsketches.Spec{
		Window: &fastsketches.WindowConfig{Interval: time.Hour, Slots: 3},
	})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 50_000; i++ {
		th.Update(i%writers, uint64(i)) // 50k distinct clients, interval 1
	}
	th.RotateNow()
	for i := 0; i < 10_000; i++ {
		th.Update(i%writers, uint64(i)) // 10k returning clients, interval 2
	}
	th.RotateNow()
	win, _ := th.Sketch().WindowEstimate()
	fmt.Printf("\ndistinct clients: window %.0f, cumulative %.0f\n",
		win, th.Sketch().Estimate())

	if st, ok := th.WindowStats(); ok {
		fmt.Printf("window stats: %d slots x %v, %d rotations, live age %v\n",
			st.Slots, st.Interval, st.Rotations, st.LiveAge.Round(time.Millisecond))
	}

	fmt.Println("\nWindows ride the existing machinery: rotation is an exact epoch")
	fmt.Println("drain, windowed queries fold a materialized suffix-merge (O(1),")
	fmt.Println("zero-alloc), checkpoints serialise the ring slot-by-slot, and the")
	fmt.Println("bound — S·r plus one rotation interval — is asserted under -race")
	fmt.Println("(TestStressWindowRotateUnderFire).")
}
