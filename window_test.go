package fastsketches_test

// Registry-level windowing: the declarative Spec.Window surface, the
// name-spanning ReplaceWindow/StopWindow admin plane, the registry-wide
// default window, windowed checkpoint round-trips, and the rotation-vs-
// resize-vs-checkpoint chaos run (exercised under -race in CI).

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"fastsketches"
)

// drain forces every buffered update into queryable state: a resize to a
// DIFFERENT shard count (same-size resizes are no-ops) drains each writer
// buffer exactly — into the window carry when a window is enabled — so the
// assertions below are exact, not bounded.
func drain(t *testing.T, h interface{ Resize(int) error }, s int) {
	t.Helper()
	if err := h.Resize(s); err != nil {
		t.Fatal(err)
	}
}

func TestSpecWindowDeclarative(t *testing.T) {
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{
		Shards: 2, Writers: 2, MaxError: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	spec := fastsketches.Spec{Window: &fastsketches.WindowConfig{
		Interval: time.Hour, Slots: 3, Decay: 0.5,
	}}
	cm, err := reg.OpenCountMin("w.cm", spec)
	if err != nil {
		t.Fatal(err)
	}
	if !cm.WindowEnabled() {
		t.Fatal("Spec.Window did not declare a window")
	}

	for i := 0; i < 100; i++ {
		cm.Update(i%2, 7)
	}
	drain(t, cm, 3)
	if !cm.RotateNow() {
		t.Fatal("RotateNow refused with a window declared")
	}
	for i := 0; i < 50; i++ {
		cm.Update(i%2, 7)
	}
	drain(t, cm, 2)
	if n, ok := cm.Sketch().WindowN(); !ok || n != 150 {
		t.Fatalf("WindowN = (%d, %v), want (150, true)", n, ok)
	}

	// Reopening with an equal declaration is a no-op: the ring, its closed
	// slot and the rotation count all survive.
	cm2, err := reg.OpenCountMin("w.cm", fastsketches.Spec{
		Window: &fastsketches.WindowConfig{Interval: time.Hour, Slots: 3, Decay: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cm2.Sketch() != cm.Sketch() {
		t.Fatal("reopen returned a different sketch")
	}
	st, ok := cm2.WindowStats()
	if !ok || st.Rotations != 1 {
		t.Fatalf("equal reopen lost the ring: stats (%+v, %v)", st, ok)
	}
	if n, _ := cm2.Sketch().WindowN(); n != 150 {
		t.Fatalf("equal reopen lost window contents: WindowN = %d", n)
	}

	// Reopening with a nil Window leaves the running window untouched.
	cm3, err := reg.OpenCountMin("w.cm", fastsketches.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if st, ok := cm3.WindowStats(); !ok || st.Rotations != 1 {
		t.Fatalf("nil-Window reopen touched the ring: stats (%+v, %v)", st, ok)
	}

	// A different declaration collapses the old window into the cumulative
	// plane (no count loss) and re-arms a fresh ring.
	cm4, err := reg.OpenCountMin("w.cm", fastsketches.Spec{
		Window: &fastsketches.WindowConfig{Interval: time.Hour, Slots: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	wc, ok := cm4.Sketch().WindowSettings()
	if !ok || wc.Slots != 5 || wc.Decay != 0 {
		t.Fatalf("re-armed settings = (%+v, %v), want Slots=5 Decay=0", wc, ok)
	}
	if st, _ := cm4.WindowStats(); st.Rotations != 0 {
		t.Fatalf("re-armed window kept %d rotations, want 0", st.Rotations)
	}
	if n, ok := cm4.Sketch().WindowN(); !ok || n != 0 {
		t.Fatalf("re-armed WindowN = (%d, %v), want (0, true)", n, ok)
	}
	acc := cm4.NewAccumulator()
	cm4.QueryInto(acc)
	if acc.N() != 150 {
		t.Fatalf("cumulative N after re-arm = %d, want 150 (collapse lost counts)", acc.N())
	}
}

func TestSpecWindowRejectsBadConfig(t *testing.T) {
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{Shards: 1, Writers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	for _, w := range []fastsketches.WindowConfig{
		{Interval: time.Second, Decay: 1.5},
		{Interval: time.Second, Slots: -1},
		{Interval: time.Second, Slots: 1 << 20},
	} {
		w := w
		if _, err := reg.OpenCountMin("w.bad", fastsketches.Spec{Window: &w}); err == nil {
			t.Errorf("Spec.Window %+v accepted", w)
		}
	}
	// Decay on a family without scalable counters is a per-sketch error on
	// the typed path (the caller named one family explicitly — no silent
	// stripping, unlike the name-spanning ReplaceWindow).
	if _, err := reg.OpenTheta("w.bad", fastsketches.Spec{
		Window: &fastsketches.WindowConfig{Interval: time.Second, Decay: 0.5},
	}); err == nil {
		t.Error("decay on theta accepted through Spec.Window")
	}
}

func TestRegistryConfigDefaultWindow(t *testing.T) {
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{
		Shards: 2, Writers: 2,
		WindowInterval: time.Hour, WindowSlots: 2, WindowDecay: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	th := openTheta(t, reg, "def")
	cm := openCountMin(t, reg, "def")
	wcTh, ok := th.Sketch().WindowSettings()
	if !ok || wcTh.Interval != time.Hour || wcTh.Slots != 2 || wcTh.Decay != 0 {
		t.Fatalf("theta default window = (%+v, %v), want hour/2/decay-free", wcTh, ok)
	}
	wcCM, ok := cm.Sketch().WindowSettings()
	if !ok || wcCM.Decay != 0.25 {
		t.Fatalf("countmin default window = (%+v, %v), want Decay=0.25", wcCM, ok)
	}
}

func TestReplaceWindowAndStopWindow(t *testing.T) {
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{
		Shards: 2, Writers: 2, MaxError: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	th := openTheta(t, reg, "multi")
	cm := openCountMin(t, reg, "multi")

	if _, err := reg.ReplaceWindow("absent", fastsketches.WindowConfig{Interval: time.Hour}); err == nil {
		t.Error("ReplaceWindow on an unregistered name succeeded")
	}

	cfg := fastsketches.WindowConfig{Interval: time.Hour, Slots: 2, Decay: 0.5}
	n, err := reg.ReplaceWindow("multi", cfg)
	if err != nil || n != 2 {
		t.Fatalf("ReplaceWindow = (%d, %v), want (2, nil)", n, err)
	}
	// Decay is stripped for the families without scalable counters and kept
	// for Count-Min — same window shape, per-family decay capability.
	if wc, ok := th.Sketch().WindowSettings(); !ok || wc.Decay != 0 || wc.Slots != 2 {
		t.Fatalf("theta window = (%+v, %v), want decay stripped", wc, ok)
	}
	if wc, ok := cm.Sketch().WindowSettings(); !ok || wc.Decay != 0.5 {
		t.Fatalf("countmin window = (%+v, %v), want Decay=0.5", wc, ok)
	}

	// Idempotence with the stripping in play: rotate both rings, re-declare
	// the same config, and the rings must survive on every family.
	th.RotateNow()
	cm.RotateNow()
	if n, err := reg.ReplaceWindow("multi", cfg); err != nil || n != 2 {
		t.Fatalf("repeat ReplaceWindow = (%d, %v)", n, err)
	}
	if st, ok := th.WindowStats(); !ok || st.Rotations != 1 {
		t.Fatalf("repeat ReplaceWindow re-armed theta: stats (%+v, %v)", st, ok)
	}
	if st, ok := cm.WindowStats(); !ok || st.Rotations != 1 {
		t.Fatalf("repeat ReplaceWindow re-armed countmin: stats (%+v, %v)", st, ok)
	}

	// A changed shape re-arms everywhere.
	if _, err := reg.ReplaceWindow("multi", fastsketches.WindowConfig{
		Interval: time.Hour, Slots: 4,
	}); err != nil {
		t.Fatal(err)
	}
	if st, _ := cm.WindowStats(); st.Rotations != 0 {
		t.Fatalf("changed ReplaceWindow kept countmin ring: %d rotations", st.Rotations)
	}

	if n := reg.StopWindow("multi"); n != 2 {
		t.Fatalf("StopWindow = %d, want 2", n)
	}
	if th.WindowEnabled() || cm.WindowEnabled() {
		t.Fatal("StopWindow left a window enabled")
	}
	if n := reg.StopWindow("multi"); n != 0 {
		t.Fatalf("second StopWindow = %d, want 0", n)
	}
}

func TestCheckpointRestoreWindowedState(t *testing.T) {
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{
		Shards: 2, Writers: 2, MaxError: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	cm, err := reg.OpenCountMin("ck.win", fastsketches.Spec{
		Window: &fastsketches.WindowConfig{Interval: time.Hour, Slots: 4, Decay: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	const key = 7
	next := 3 // alternate the drain-resize target: same-size resizes no-op
	ingest := func(n int) {
		for i := 0; i < n; i++ {
			cm.Update(i%2, key)
		}
		drain(t, cm, next)
		next = 5 - next
	}
	ingest(100)
	cm.RotateNow() // slot: 100, decayed: 100
	ingest(40)
	cm.RotateNow() // slot: 40, decay plane: 0.5·100 + 40 = 90
	ingest(10)     // live interval, weight 1 in the decayed read

	if n, ok := cm.Sketch().WindowN(); !ok || n != 150 {
		t.Fatalf("pre-checkpoint WindowN = (%d, %v), want (150, true)", n, ok)
	}
	if d, ok := cm.Sketch().DecayedCount(key); !ok || d != 100 {
		t.Fatalf("pre-checkpoint DecayedCount = (%d, %v), want (90+10 live, true)", d, ok)
	}

	var buf bytes.Buffer
	if err := reg.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{
		Shards: 2, Writers: 2, MaxError: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if err := dst.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	re := openCountMin(t, dst, "ck.win")
	wc, ok := re.Sketch().WindowSettings()
	if !ok || wc.Interval != time.Hour || wc.Slots != 4 || wc.Decay != 0.5 {
		t.Fatalf("restored window settings = (%+v, %v)", wc, ok)
	}
	// A restore rebuilds the closed ring (100 + 40) and the decay plane (90)
	// exactly, but the live-interval state at checkpoint time — the drained 10
	// — ships in the base blob and is demoted to cumulative-only history, so
	// the restored window no longer counts it.
	if n, ok := re.Sketch().WindowN(); !ok || n != 140 {
		t.Fatalf("restored WindowN = (%d, %v), want (140, true)", n, ok)
	}
	if d, ok := re.Sketch().DecayedCount(key); !ok || d != 90 {
		t.Fatalf("restored DecayedCount = (%d, %v), want (90, true)", d, ok)
	}
	acc := re.NewAccumulator()
	re.QueryInto(acc)
	if acc.N() != 150 {
		t.Fatalf("restored cumulative N = %d, want 150", acc.N())
	}

	// The restored ring must keep sliding correctly: one more rotation expels
	// nothing yet (4 slots, 2 used) and the window keeps covering the
	// restored closed slots.
	if !re.RotateNow() {
		t.Fatal("restored window does not rotate")
	}
	if n, _ := re.Sketch().WindowN(); n != 140 {
		t.Fatalf("post-restore rotation dropped counts: WindowN = %d", n)
	}
}

// TestWindowRotateResizeCheckpointUnderFire races the four mutating planes —
// writers, explicit rotations, live resizes and checkpoint serialisation —
// against each other; run under -race in CI. Every checkpoint taken under
// fire must restore cleanly, and the restored windowed total may never
// exceed the restored cumulative total nor the updates ingested so far.
func TestWindowRotateResizeCheckpointUnderFire(t *testing.T) {
	const writers, perWriter = 4, 10_000
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{
		Shards: 2, Writers: writers,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	cm, err := reg.OpenCountMin("fire.win", fastsketches.Spec{
		Window: &fastsketches.WindowConfig{Interval: time.Hour, Slots: 3, Decay: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				cm.Update(w, uint64(i%127))
			}
		}(w)
	}
	writersDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(writersDone)
	}()

	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		for s := 1; ; s++ {
			select {
			case <-writersDone:
				return
			default:
			}
			cm.RotateNow()
			if err := cm.Resize(1 + s%4); err != nil {
				t.Errorf("resize under rotation fire: %v", err)
				return
			}
			cm.RotateNow()
		}
	}()

	var ckpt []byte
	for k := 0; k < 25; k++ {
		ckpt = reg.AppendCheckpoint(ckpt[:0])
		dst, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := dst.Restore(bytes.NewReader(ckpt)); err != nil {
			t.Fatalf("checkpoint %d taken under rotation fire does not restore: %v", k, err)
		}
		re := openCountMin(t, dst, "fire.win")
		acc := re.NewAccumulator()
		re.QueryInto(acc)
		total := acc.N()
		win, ok := re.Sketch().WindowN()
		if !ok {
			t.Fatalf("checkpoint %d restored without its window", k)
		}
		if int(win) > writers*perWriter || win > total {
			t.Fatalf("checkpoint %d: windowed %d exceeds cumulative %d or ingested %d",
				k, win, total, writers*perWriter)
		}
		dst.Close()
	}
	<-writersDone
	<-chaosDone

	// Quiesce: a resize to a never-visited shard count drains every buffer,
	// and the cumulative plane must then hold the full stream exactly.
	if err := cm.Resize(5); err != nil {
		t.Fatal(err)
	}
	acc := cm.NewAccumulator()
	cm.QueryInto(acc)
	if acc.N() != writers*perWriter {
		t.Fatalf("cumulative N after quiesce = %d, want %d", acc.N(), writers*perWriter)
	}
	if win, ok := cm.Sketch().WindowN(); !ok || win > uint64(writers*perWriter) {
		t.Fatalf("windowed N after quiesce = (%d, %v), want ≤ %d", win, ok, writers*perWriter)
	}
}
