package fastsketches

import (
	"fmt"
	"math/rand"

	"fastsketches/internal/core"
	"fastsketches/internal/reservoir"
)

// ReservoirConfig configures a ConcurrentReservoir.
type ReservoirConfig struct {
	// K is the sample size. Default 1024.
	K int
	// Writers is the number of ingestion lanes. Default 1.
	Writers int
	// MaxError is the eager-phase error budget, as in ThetaConfig.
	// Default 0.04.
	MaxError float64
	// BufferSize overrides the per-writer buffer. Default 16.
	BufferSize int
	// RandSeed seeds the per-writer key generators. 0 = derive from K.
	RandSeed int64
}

func (c *ReservoirConfig) normalise() error {
	if c.K == 0 {
		c.K = 1024
	}
	if c.K < 1 {
		return fmt.Errorf("%w: K must be ≥ 1", ErrConfig)
	}
	if c.Writers == 0 {
		c.Writers = 1
	}
	if c.Writers < 0 {
		return fmt.Errorf("%w: negative Writers", ErrConfig)
	}
	if c.MaxError == 0 {
		c.MaxError = 0.04
	}
	if c.BufferSize == 0 {
		c.BufferSize = 16
	}
	if c.BufferSize < 0 {
		return fmt.Errorf("%w: negative BufferSize", ErrConfig)
	}
	if c.RandSeed == 0 {
		c.RandSeed = int64(c.K)
	}
	return nil
}

// ConcurrentReservoir is a uniform reservoir sample with concurrent
// ingestion and wait-free mean queries — the reservoir-sampling
// instantiation of the framework that Section 5.1 of the paper sketches.
// Writers draw sampling keys locally and pre-filter against the global
// reservoir's key threshold, so once the reservoir is full most updates
// never touch shared state.
type ConcurrentReservoir struct {
	comp *reservoir.Composable
	fw   *core.Framework[reservoir.Item]
	rngs []*rand.Rand // one per writer lane; lane-local like the buffers
}

// NewConcurrentReservoir builds and starts a concurrent reservoir sample.
func NewConcurrentReservoir(cfg ReservoirConfig) (*ConcurrentReservoir, error) {
	if err := cfg.normalise(); err != nil {
		return nil, err
	}
	comp := reservoir.NewComposable(cfg.K, cfg.RandSeed)
	fw := core.New[reservoir.Item](comp, core.Config{
		Workers:    cfg.Writers,
		BufferSize: cfg.BufferSize,
		MaxError:   cfg.MaxError,
		K:          cfg.K,
	})
	rngs := make([]*rand.Rand, cfg.Writers)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(cfg.RandSeed + int64(i) + 1))
	}
	fw.Start()
	return &ConcurrentReservoir{comp: comp, fw: fw, rngs: rngs}, nil
}

// Update samples one value on writer lane w.
func (r *ConcurrentReservoir) Update(w int, v float64) {
	r.fw.Update(w, reservoir.Item{Value: v, Key: r.rngs[w].Float64()})
}

// Mean returns the latest published sample mean (wait-free). It reflects
// all but at most Relaxation() of the updates that completed before the
// call.
func (r *ConcurrentReservoir) Mean() float64 { return r.comp.Mean() }

// Snapshot returns the latest published view.
func (r *ConcurrentReservoir) Snapshot() *reservoir.Snap { return r.comp.Snapshot() }

// Relaxation returns the query staleness bound.
func (r *ConcurrentReservoir) Relaxation() int { return r.fw.Relaxation() }

// Close stops the propagator and drains all buffers.
func (r *ConcurrentReservoir) Close() { r.fw.Close() }

// Result returns the underlying sequential reservoir after Close. Note that
// its N() counts only unfiltered items; use the concurrent type for mean
// statistics and a sequential Sketch when totals are needed.
func (r *ConcurrentReservoir) Result() *reservoir.Sketch { return r.comp.Gadget() }
