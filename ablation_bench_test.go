// Ablation benchmarks for the design choices the paper motivates:
//
//   - pre-filtering via hints (Section 5.1): the paper claims it
//     "significantly reduces the frequency of propagations and associated
//     memory fences" — Ablation_PreFilter removes shouldAdd and measures
//     the cost;
//   - double buffering (Section 5.2): OptParSketch vs ParSketch;
//   - local buffer size b: the throughput/recency knob behind Figure 8 and
//     the "future work" item on adapting buffer sizes dynamically;
//   - snapshot publication cost: what the Θ composable pays to make queries
//     a single atomic load.
package fastsketches

import (
	"fmt"
	"testing"

	"fastsketches/internal/core"
	"fastsketches/internal/theta"
)

// noFilterComposable wraps the Θ composable but disables pre-filtering, so
// every update travels through a local buffer to the propagator.
type noFilterComposable struct {
	*theta.Composable
}

func (n noFilterComposable) ShouldAdd(hint uint64, h uint64) bool { return true }

// BenchmarkAblation_PreFilter quantifies the hint optimisation: with
// filtering, once Θ shrinks most updates die at a single comparison; without
// it, every update is buffered, merged and discarded by the global sketch.
func BenchmarkAblation_PreFilter(b *testing.B) {
	b.Run("WithHints", func(b *testing.B) {
		comp := theta.NewComposable(12, DefaultSeed)
		fw := core.New[uint64](comp, core.Config{Workers: 1, BufferSize: 16, MaxError: 1})
		fw.Start()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fw.Update(0, theta.HashKey(uint64(i), DefaultSeed))
		}
		b.StopTimer()
		fw.Close()
	})
	b.Run("NoHints", func(b *testing.B) {
		comp := theta.NewComposable(12, DefaultSeed)
		fw := core.New[uint64](noFilterComposable{comp}, core.Config{Workers: 1, BufferSize: 16, MaxError: 1})
		fw.Start()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fw.Update(0, theta.HashKey(uint64(i), DefaultSeed))
		}
		b.StopTimer()
		fw.Close()
	})
}

// BenchmarkAblation_DoubleBuffering contrasts OptParSketch (writers keep
// ingesting during propagation) with ParSketch (writers block).
func BenchmarkAblation_DoubleBuffering(b *testing.B) {
	for _, mode := range []core.Mode{core.ModeOptimised, core.ModeUnoptimised} {
		b.Run(mode.String(), func(b *testing.B) {
			comp := theta.NewComposable(12, DefaultSeed)
			fw := core.New[uint64](comp, core.Config{Workers: 1, BufferSize: 4, MaxError: 1, Mode: mode})
			fw.Start()
			for i := 0; i < b.N; i++ {
				fw.Update(0, theta.HashKey(uint64(i), DefaultSeed))
			}
			b.StopTimer()
			fw.Close()
		})
	}
}

// BenchmarkAblation_BufferSize sweeps b: larger buffers amortise the
// prop_i handshake but increase the relaxation (staleness) r = 2Nb.
func BenchmarkAblation_BufferSize(b *testing.B) {
	for _, bufSize := range []int{1, 2, 4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("b=%d", bufSize), func(b *testing.B) {
			comp := theta.NewComposable(12, DefaultSeed)
			fw := core.New[uint64](comp, core.Config{Workers: 1, BufferSize: bufSize, MaxError: 1})
			fw.Start()
			for i := 0; i < b.N; i++ {
				fw.Update(0, theta.HashKey(uint64(i), DefaultSeed))
			}
			b.StopTimer()
			fw.Close()
		})
	}
}

// BenchmarkAblation_EagerLimit sweeps the adaptation point of Section 5.3 on
// a fixed small stream: one op = feed 4096 uniques with the given eager
// limit (0 disables).
func BenchmarkAblation_EagerLimit(b *testing.B) {
	const x = 4096
	for _, limit := range []int{0, 256, 1250, 4096} {
		name := fmt.Sprintf("limit=%d", limit)
		if limit == 0 {
			name = "disabled"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				comp := theta.NewComposable(12, DefaultSeed)
				e := 1.0
				if limit > 0 {
					e = 0.04
				}
				fw := core.New[uint64](comp, core.Config{
					Workers: 1, BufferSize: 5, MaxError: e, EagerLimit: limit, K: 4096,
				})
				fw.Start()
				base := uint64(i) << 44
				for j := 0; j < x; j++ {
					fw.Update(0, theta.HashKey(base+uint64(j), DefaultSeed))
				}
				fw.Close()
			}
			b.ReportMetric(float64(x), "uniques/op")
		})
	}
}

// BenchmarkAblation_SnapshotCost measures the composables' query paths: the
// Θ snapshot is one atomic load; the quantiles snapshot is one pointer load
// plus a binary search.
func BenchmarkAblation_SnapshotCost(b *testing.B) {
	b.Run("ThetaEstimate", func(b *testing.B) {
		comp := theta.NewComposable(12, DefaultSeed)
		comp.MergeBuffer([]uint64{theta.HashKey(1, DefaultSeed)})
		b.ReportAllocs()
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += comp.Estimate()
		}
		_ = sink
	})
	b.Run("ThetaCalcHint", func(b *testing.B) {
		comp := theta.NewComposable(12, DefaultSeed)
		var sink uint64
		for i := 0; i < b.N; i++ {
			sink ^= comp.CalcHint()
		}
		_ = sink
	})
}

// BenchmarkAblation_WritersOnOneCore shows how the shared-nothing writer
// lanes behave when goroutines outnumber cores — the degenerate deployment
// the paper's dedicated-core assumption excludes.
func BenchmarkAblation_WritersOnOneCore(b *testing.B) {
	for _, writers := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			feedConcurrent(writers, 12, 16, 1.0, b.N, 1)
		})
	}
}

// BenchmarkAblation_AdaptiveBuffers measures the future-work extension: the
// hint-driven buffer growth against the fixed-b baseline on a large stream.
func BenchmarkAblation_AdaptiveBuffers(b *testing.B) {
	for _, adaptive := range []bool{false, true} {
		name := "Fixed"
		if adaptive {
			name = "Adaptive"
		}
		b.Run(name, func(b *testing.B) {
			comp := theta.NewComposable(12, DefaultSeed)
			fw := core.New[uint64](comp, core.Config{
				Workers: 1, BufferSize: 4, MaxError: 1, AdaptiveBuffers: adaptive, K: 4096,
			})
			fw.Start()
			for i := 0; i < b.N; i++ {
				fw.Update(0, theta.HashKey(uint64(i), DefaultSeed))
			}
			b.StopTimer()
			fw.Close()
		})
	}
}
