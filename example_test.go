package fastsketches_test

import (
	"fmt"

	"fastsketches"
)

// The simplest use: one writer, live distinct counting.
func ExampleNewConcurrentTheta() {
	sk, err := fastsketches.NewConcurrentTheta(fastsketches.ThetaConfig{
		LgK: 12, Writers: 1, MaxError: 0.04,
	})
	if err != nil {
		panic(err)
	}
	for i := uint64(0); i < 1000; i++ {
		sk.Update(0, i)
		sk.Update(0, i) // duplicates don't count
	}
	sk.Close()
	fmt.Printf("distinct: %.0f\n", sk.Estimate())
	// Output: distinct: 1000
}

// Quantiles over a value stream, queried after draining.
func ExampleNewConcurrentQuantiles() {
	q, err := fastsketches.NewConcurrentQuantiles(fastsketches.QuantilesConfig{K: 128})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 1000; i++ {
		q.Update(0, float64(i))
	}
	q.Close()
	s := q.Snapshot()
	fmt.Printf("min=%.0f max=%.0f\n", s.Min(), s.Max())
	// Output: min=0 max=999
}

// Sequential Θ sketches support set operations.
func ExampleThetaIntersect() {
	a := fastsketches.NewThetaSketch(12, 0)
	b := fastsketches.NewThetaSketch(12, 0)
	for i := uint64(0); i < 3000; i++ {
		a.Update(i)        // A = [0, 3000)
		b.Update(i + 1000) // B = [1000, 4000)
	}
	inter := fastsketches.ThetaIntersect(a, b)
	fmt.Printf("|A∩B| = %.0f\n", inter.Estimate())
	// Output: |A∩B| = 2000
}

// Count-Min answers per-key frequency queries.
func ExampleNewConcurrentCountMin() {
	cm, err := fastsketches.NewConcurrentCountMin(fastsketches.CountMinConfig{
		Epsilon: 0.001, Delta: 0.01,
	})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 300; i++ {
		cm.UpdateString(0, "GET /index")
		if i%3 == 0 {
			cm.UpdateString(0, "GET /health")
		}
	}
	cm.Close()
	fmt.Printf("index=%d health=%d\n",
		cm.EstimateString("GET /index"), cm.EstimateString("GET /health"))
	// Output: index=300 health=100
}

// Reservoir sampling estimates mean statistics of a stream.
func ExampleNewConcurrentReservoir() {
	r, err := fastsketches.NewConcurrentReservoir(fastsketches.ReservoirConfig{K: 256})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 100000; i++ {
		r.Update(0, 7.0) // constant stream → exact mean
	}
	r.Close()
	fmt.Printf("mean=%.1f\n", r.Mean())
	// Output: mean=7.0
}
