module fastsketches

go 1.23
