module fastsketches

go 1.24
