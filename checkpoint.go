package fastsketches

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"time"

	"fastsketches/internal/autoscale"
	"fastsketches/internal/shard"
	"fastsketches/internal/snapshot"
	"fastsketches/internal/wire"
)

// Registry-wide checkpoint/restore: every registered sketch's merged state —
// legacy ∪ draining epoch ∪ current shards, the exact fold merged queries
// use — is exported into one versioned snapshot container
// (internal/snapshot), together with the serving configuration worth
// restoring: the shard count S, view settings, and the attached autoscale
// policy's wire-travelling knobs.
//
// # Crash-recovery bound
//
// A checkpoint's fold floor is the wait-free merged fold at encode time: it
// reflects every update acked before the checkpoint except at most the
// sketch's Relaxation() = S·r (transiently S_old·r + S_new·r during a
// resize) still buffered in writer lanes. Restoring the checkpoint therefore
// guarantees: every update acked more than one checkpoint interval plus the
// relaxation window before the crash is recovered; updates acked after the
// last completed checkpoint's fold may be lost. Nothing is ever recovered
// twice — the checkpoint folds into the restored sketch's legacy
// accumulator, the same exact-once plane a Resize drains retired epochs
// into.

// checkpointable is the slice of a family wrapper the checkpoint encoder
// drives; all four satisfy it.
type checkpointable interface {
	Shards() int
	AppendSnapshot([]byte) []byte
	ViewSettings() (shard.ViewConfig, bool)
	WindowSettings() (shard.WindowConfig, bool)
	// AppendWindowedSnapshot appends the base blob (everything outside the
	// closed ring slots) and returns the slot and decay-plane blobs captured
	// under the same rotation-consistent hold; with no window enabled it
	// degrades to the plain cumulative AppendSnapshot with an empty tail.
	AppendWindowedSnapshot([]byte) ([]byte, [][]byte, []byte)
}

// restorable is the slice of a family wrapper the restore path drives.
type restorable interface {
	checkpointable
	Resize(int) error
	ImportSnapshot([]byte) error
	EnableView(shard.ViewConfig) error
	DisableView() bool
	DisableWindow() bool
	RestoreWindow(shard.WindowConfig, [][]byte, []byte) error
}

// checkpointEntry is one sketch's collected checkpoint inputs, gathered
// under the registry lock and encoded outside it. The slice holding these is
// reused across checkpoints.
type checkpointEntry struct {
	fam       snapshot.Family
	name      string
	sk        checkpointable
	hasPolicy bool
	policy    autoscale.Policy
}

// AppendCheckpoint appends the registry's full checkpoint container to dst
// and returns the extended slice. The encode is wait-free toward writers and
// queriers: state is captured through the same pooled-accumulator fold
// merged queries use, so no propagator is blocked and no new allocation
// regime is introduced — with a pre-grown dst, steady-state checkpoints
// allocate nothing.
//
// Unlike other registry methods, checkpointing works after Close: the final
// shutdown checkpoint captures the drained (exact) state, which is the most
// valuable one to persist.
func (r *Registry) AppendCheckpoint(dst []byte) []byte {
	r.ckptMu.Lock()
	defer r.ckptMu.Unlock()
	return r.appendCheckpointLocked(dst)
}

// appendCheckpointLocked is AppendCheckpoint's body; the caller holds
// r.ckptMu (which owns the ckptEntries/ckptNameBuf scratch).
func (r *Registry) appendCheckpointLocked(dst []byte) []byte {
	entries := r.ckptEntries[:0]
	r.mu.RLock()
	for n, sk := range r.thetas {
		entries = append(entries, checkpointEntry{fam: snapshot.FamilyTheta, name: n, sk: sk})
	}
	for n, sk := range r.hlls {
		entries = append(entries, checkpointEntry{fam: snapshot.FamilyHLL, name: n, sk: sk})
	}
	for n, sk := range r.quants {
		entries = append(entries, checkpointEntry{fam: snapshot.FamilyQuantiles, name: n, sk: sk})
	}
	for n, sk := range r.cms {
		entries = append(entries, checkpointEntry{fam: snapshot.FamilyCountMin, name: n, sk: sk})
	}
	for i := range entries {
		for _, rc := range r.controllers {
			if any(rc.target) == any(entries[i].sk) {
				entries[i].hasPolicy = true
				entries[i].policy = rc.ctl.Policy()
				break
			}
		}
	}
	r.mu.RUnlock()
	r.ckptEntries = entries

	// Deterministic record order (family, then name): map iteration is
	// randomised, and a stable layout makes checkpoints diffable and keeps
	// the fuzzers' corpus meaningful.
	slices.SortFunc(entries, func(a, b checkpointEntry) int {
		if a.fam != b.fam {
			return int(a.fam) - int(b.fam)
		}
		return strings.Compare(a.name, b.name)
	})

	dst = snapshot.AppendHeader(dst, len(entries))
	for i := range entries {
		e := &entries[i]
		r.ckptNameBuf = append(r.ckptNameBuf[:0], e.name...)
		rec := snapshot.Record{
			Family: e.fam,
			Name:   r.ckptNameBuf,
			Shards: uint32(e.sk.Shards()),
		}
		if vc, ok := e.sk.ViewSettings(); ok {
			rec.HasView = true
			rec.ViewRefreshNs = int64(vc.RefreshEvery)
			rec.ViewMaxAgeNs = int64(vc.MaxAge)
		}
		if e.hasPolicy {
			rec.HasPolicy = true
			rec.MinShards = uint32(e.policy.MinShards)
			rec.MaxShards = uint32(e.policy.MaxShards)
			rec.HighWater = e.policy.HighWater
			rec.LowWater = e.policy.LowWater
		}
		if wc, ok := e.sk.WindowSettings(); ok {
			// Windowed sketches serialise slot-by-slot: the base blob holds
			// everything outside the closed ring (live shards, carry, legacy,
			// in the cumulative plane), the tail each closed interval plus
			// the decay plane, so a restore rebuilds the ring — and hence
			// windowed queries — not just the cumulative total.
			rec.HasWindow = true
			rec.WindowIntervalNs = int64(wc.Interval)
			rec.WindowSlots = uint32(wc.Slots)
			rec.WindowDecay = wc.Decay
			var m snapshot.Marks
			dst, m = snapshot.BeginRecord(dst, &rec)
			var slots [][]byte
			var decayed []byte
			dst, slots, decayed = e.sk.AppendWindowedSnapshot(dst)
			dst = snapshot.EndBlob(dst, &m)
			dst = snapshot.AppendWindowTail(dst, slots, decayed)
			dst = snapshot.EndRecord(dst, m)
			continue
		}
		var m snapshot.Marks
		dst, m = snapshot.BeginRecord(dst, &rec)
		dst = e.sk.AppendSnapshot(dst)
		dst = snapshot.EndRecord(dst, m)
	}
	return dst
}

// Checkpoint encodes the registry's full checkpoint container into an
// internal reused buffer and writes it to w in one Write call. See
// AppendCheckpoint for the capture semantics and the crash-recovery bound.
func (r *Registry) Checkpoint(w io.Writer) error {
	r.ckptMu.Lock()
	defer r.ckptMu.Unlock()
	r.ckptBuf = r.appendCheckpointLocked(r.ckptBuf[:0])
	if _, err := w.Write(r.ckptBuf); err != nil {
		return fmt.Errorf("fastsketches: checkpoint write: %w", err)
	}
	return nil
}

// Restore reads one checkpoint container from rd and folds every record into
// this registry: each record's sketch is created under its recorded name (if
// absent), resized to its recorded shard count, its snapshot folded into the
// sketch's legacy state (exact, no staleness contribution), and its recorded
// view settings and autoscale policy re-attached. Restoring into a non-empty
// registry merges: existing state is kept and the snapshot folds in on top —
// which is also what makes Restore idempotent-unsafe (restoring the same
// additive-family snapshot twice doubles Count-Min weights); restore into a
// fresh registry for crash recovery.
//
// Writers and queriers of already-registered sketches stay active
// throughout. Malformed input fails with the snapshot codec's typed errors,
// family mismatches with the family's typed errors; records before the
// failure stay imported. Restore after Close is an error.
func (r *Registry) Restore(rd io.Reader) error {
	r.mu.RLock()
	closed := r.closed
	r.mu.RUnlock()
	if closed {
		return fmt.Errorf("fastsketches: Restore after Close")
	}
	data, err := io.ReadAll(rd)
	if err != nil {
		return fmt.Errorf("fastsketches: checkpoint read: %w", err)
	}
	count, rest, err := snapshot.ParseHeader(data)
	if err != nil {
		return err
	}
	for i := 0; i < count; i++ {
		var rec snapshot.Record
		rec, rest, err = snapshot.ParseRecord(rest)
		if err != nil {
			return fmt.Errorf("record %d: %w", i, err)
		}
		if err := r.restoreRecord(&rec); err != nil {
			return fmt.Errorf("record %d (%s/%s): %w", i, rec.Family, rec.Name, err)
		}
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d bytes after %d records", snapshot.ErrTrailing, len(rest), count)
	}
	return nil
}

// restoreRecord applies one parsed checkpoint record.
func (r *Registry) restoreRecord(rec *snapshot.Record) error {
	name := string(rec.Name)
	var sk restorable
	var tgt autoscale.Target
	switch rec.Family {
	case snapshot.FamilyTheta:
		s := r.getTheta(name)
		sk, tgt = s, s
	case snapshot.FamilyHLL:
		s := r.getHLL(name)
		sk, tgt = s, s
	case snapshot.FamilyQuantiles:
		s := r.getQuantiles(name)
		sk, tgt = s, s
	case snapshot.FamilyCountMin:
		s := r.getCountMin(name)
		sk, tgt = s, s
	default:
		return fmt.Errorf("%w: family %d", snapshot.ErrBadRecord, rec.Family)
	}
	if rec.Shards < 1 || rec.Shards > wire.MaxShards {
		return fmt.Errorf("%w: shard count %d outside [1,%d]", snapshot.ErrBadRecord, rec.Shards, wire.MaxShards)
	}
	if err := sk.Resize(int(rec.Shards)); err != nil {
		return err
	}
	if err := sk.ImportSnapshot(rec.Blob); err != nil {
		return err
	}
	if rec.HasView {
		sk.DisableView()
		if err := sk.EnableView(shard.ViewConfig{
			RefreshEvery: time.Duration(rec.ViewRefreshNs),
			MaxAge:       time.Duration(rec.ViewMaxAgeNs),
		}); err != nil {
			return err
		}
	}
	if rec.HasWindow {
		// Disable-then-restore: restoring over a live window folds the old
		// window's closed slots into the cumulative legacy (DisableWindow's
		// collapse) and rebuilds the ring from the record, so the cumulative
		// total never loses counts and the windowed view matches the
		// checkpoint.
		sk.DisableWindow()
		if err := sk.RestoreWindow(shard.WindowConfig{
			Interval: time.Duration(rec.WindowIntervalNs),
			Slots:    int(rec.WindowSlots),
			Decay:    rec.WindowDecay,
		}, rec.WindowSlotBlobs, rec.WindowDecayedBlob); err != nil {
			return err
		}
	}
	if rec.HasPolicy {
		// The four recorded knobs travel; the remaining policy fields take
		// the package's production defaults, exactly as on the OpAutoscale
		// wire path.
		if err := r.attachController(tgt, autoscale.Policy{
			MinShards: int(rec.MinShards),
			MaxShards: int(rec.MaxShards),
			HighWater: rec.HighWater,
			LowWater:  rec.LowWater,
		}); err != nil {
			return err
		}
	}
	return nil
}

// attachController replaces the autoscale controller(s) of one specific
// sketch: any controller already driving tgt is detached and stopped, and a
// fresh started one under p takes over — so a Restore into a registry with
// live controllers swaps rather than stacks them, and stops what it
// replaces (no goroutine leak). On a policy validation error the previous
// controllers stay attached.
func (r *Registry) attachController(tgt autoscale.Target, p autoscale.Policy) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return fmt.Errorf("fastsketches: attach controller after Close")
	}
	var detached []registryController
	kept := r.controllers[:0]
	for _, rc := range r.controllers {
		if any(rc.target) == any(tgt) {
			detached = append(detached, rc)
		} else {
			kept = append(kept, rc)
		}
	}
	ctl, err := autoscale.New(tgt, p)
	if err != nil {
		r.controllers = append(kept, detached...)
		r.mu.Unlock()
		return err
	}
	if r.memPressure != nil {
		ctl.SetMemoryPressure(r.memPressure)
	}
	r.controllers = append(kept, registryController{ctl, tgt})
	r.mu.Unlock()
	for _, rc := range detached {
		rc.ctl.Stop()
	}
	ctl.Start()
	return nil
}

// CheckpointFile writes the registry's checkpoint atomically to path: the
// container is written to a temporary file in the same directory, fsynced,
// and renamed into place (with a directory fsync), so a crash mid-write can
// never leave a truncated or torn checkpoint under path — readers see either
// the previous complete checkpoint or the new one.
func (r *Registry) CheckpointFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("fastsketches: checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := r.Checkpoint(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("fastsketches: checkpoint fsync: %w", err))
	}
	if err := tmp.Close(); err != nil {
		return fail(fmt.Errorf("fastsketches: checkpoint close: %w", err))
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fastsketches: checkpoint rename: %w", err)
	}
	// The rename must itself be durable: fsync the directory so the new
	// entry survives a crash (best-effort on filesystems that refuse
	// directory syncs).
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// RestoreFile restores the registry from a checkpoint written by
// CheckpointFile.
func (r *Registry) RestoreFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("fastsketches: restore open: %w", err)
	}
	defer f.Close()
	return r.Restore(f)
}

// Checkpointer periodically writes the registry's checkpoint to a file —
// the durability loop sketchd runs. Pacing goes through an injectable Clock
// (autoscale.ManualClock satisfies it) so tests drive checkpoints
// deterministically; the zero Clock is the system clock.
type Checkpointer struct {
	reg   *Registry
	path  string
	every time.Duration
	clock Clock
	onErr func(error)

	stop chan struct{}
	done chan struct{}
}

// NewCheckpointer returns an unstarted periodic checkpointer writing to path
// every `every` on clock (nil = system clock). onErr, if non-nil, receives
// each failed checkpoint's error (the loop keeps running — a transient
// full-disk must not kill durability forever).
func NewCheckpointer(reg *Registry, path string, every time.Duration, clock Clock, onErr func(error)) (*Checkpointer, error) {
	if every <= 0 {
		return nil, fmt.Errorf("%w: checkpoint interval must be > 0", ErrConfig)
	}
	if path == "" {
		return nil, fmt.Errorf("%w: empty checkpoint path", ErrConfig)
	}
	if clock == nil {
		clock = systemClock{}
	}
	return &Checkpointer{
		reg: reg, path: path, every: every, clock: clock, onErr: onErr,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}, nil
}

// systemClock is the production Clock of the root package (shard keeps its
// own unexported one).
type systemClock struct{}

func (systemClock) Now() time.Time                         { return time.Now() }
func (systemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Start launches the checkpoint loop. Call once.
func (c *Checkpointer) Start() {
	go func() {
		defer close(c.done)
		for {
			select {
			case <-c.stop:
				return
			case <-c.clock.After(c.every):
				if err := c.CheckpointNow(); err != nil && c.onErr != nil {
					c.onErr(err)
				}
			}
		}
	}()
}

// Stop terminates the loop and waits for an in-flight checkpoint to finish.
// It does not write a final checkpoint; callers that want one (sketchd's
// shutdown does) call CheckpointNow after Stop — checkpointing works even
// after the registry is closed, capturing the drained exact state.
func (c *Checkpointer) Stop() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	<-c.done
}

// CheckpointNow writes one checkpoint synchronously, independent of the
// periodic tick.
func (c *Checkpointer) CheckpointNow() error {
	return c.reg.CheckpointFile(c.path)
}
