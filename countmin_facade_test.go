package fastsketches

import (
	"sync"
	"testing"

	"fastsketches/internal/stream"
)

func TestConcurrentCountMinEndToEnd(t *testing.T) {
	cm, err := NewConcurrentCountMin(CountMinConfig{Epsilon: 0.001, Delta: 0.01, Writers: 2, MaxError: 1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1 << 16
	keys := stream.Zipf(n, 500, 1.5, 11)
	truth := map[uint64]uint64{}
	for _, k := range keys {
		truth[k]++
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 2 {
				cm.Update(w, keys[i])
			}
		}(w)
	}
	wg.Wait()
	cm.Close()
	if cm.N() != n {
		t.Fatalf("N = %d, want %d", cm.N(), n)
	}
	nf := float64(n)
	bound := uint64(nf*0.001*3) + 1
	for k, want := range truth {
		got := cm.Estimate(k)
		if got < want {
			t.Fatalf("key %d underestimated: %d < %d", k, got, want)
		}
		if got > want+bound {
			t.Fatalf("key %d overestimate beyond 3ε·N: %d > %d+%d", k, got, want, bound)
		}
	}
}

func TestConcurrentCountMinStrings(t *testing.T) {
	cm, err := NewConcurrentCountMin(CountMinConfig{Writers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		cm.UpdateString(0, "alpha")
		if i%2 == 0 {
			cm.UpdateString(0, "beta")
		}
	}
	cm.Close()
	if got := cm.EstimateString("alpha"); got != 100 {
		t.Errorf("alpha = %d, want 100", got)
	}
	if got := cm.EstimateString("beta"); got != 50 {
		t.Errorf("beta = %d, want 50", got)
	}
	if got := cm.EstimateString("never-seen"); got > 2 {
		t.Errorf("unseen key = %d, want ≈0", got)
	}
}

func TestConcurrentCountMinConfigErrors(t *testing.T) {
	for name, cfg := range map[string]CountMinConfig{
		"eps too big":   {Epsilon: 1.5},
		"delta too big": {Delta: 2},
		"neg writers":   {Writers: -1},
		"neg buffer":    {BufferSize: -1},
	} {
		if _, err := NewConcurrentCountMin(cfg); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
