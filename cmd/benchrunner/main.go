// benchrunner regenerates every table and figure of "Fast Concurrent Data
// Sketches" (PPoPP 2020) as TSV on stdout, in the spirit of the paper's
// artifact (`python3 run_test.py TEST`):
//
//	benchrunner figure1         scalability: concurrent vs lock-based
//	benchrunner figure3         strong-adversary choice regions
//	benchrunner figure4         estimator distributions (seq vs weak adversary)
//	benchrunner figure5a        accuracy pitchfork, no eager (e=1.0)
//	benchrunner figure5b        accuracy pitchfork, eager (e=0.04)
//	benchrunner figure6a        write-only throughput sweep (loglog)
//	benchrunner figure6b        write-only throughput, large sizes only
//	benchrunner figure7         mixed read-write workload
//	benchrunner figure8         eager vs no-eager speedup
//	benchrunner table1          Θ error analysis under adversaries
//	benchrunner table2          performance/accuracy tradeoff vs k
//	benchrunner quantiles-error Section 6.2 ε_r validation
//	benchrunner sharded         shard-count sweep: throughput vs S·r staleness
//	benchrunner mergedquery     merged-query plane: ns/op + allocs/op per path
//	benchrunner reshard         live resharding: throughput timeline across epoch swaps
//	benchrunner autoscale       autoscaling controller: bursty load walks S up and back down
//	benchrunner server          network front-end: loopback batched-ingest throughput + query latency
//	benchrunner ingest          ingest hot path: server-path ns/item + batches/sec across batch sizes and lane counts, allocs pinned
//	benchrunner view            materialized merged views: O(1)-in-S query latency vs the live fold
//	benchrunner checkpoint      persistence plane: registry-wide checkpoint encode ns/op (zero-alloc pinned), size, warm-start restore cost
//	benchrunner baseline        the CI benchmark-baseline set (sharded, mergedquery, reshard, autoscale, server, ingest, view, window, checkpoint)
//	benchrunner all             everything above, in order
//
// Use -quick for a fast smoke run (small sweeps, few trials) and -full for
// paper-scale parameters (hours). The default sits in between and completes
// in minutes on a laptop.
//
// -json FILE additionally emits the run's scenario metrics as a
// machine-readable benchfmt artifact (ns/op, allocs/op, ops/sec per
// scenario) — the format the committed BENCH_baseline.json uses and
// cmd/benchdiff gates CI against.
//
// -cpuprofile FILE / -memprofile FILE capture pprof profiles of the run
// (CPU for the whole run; heap at the end, after a forced GC) — the
// artifacts the CI bench job uploads so a regression caught by benchdiff
// comes with the profile that explains it.
//
// -cpus N[,N...] runs the selected TEST once per listed GOMAXPROCS value
// (e.g. -cpus 1,4 for a single-core and a multi-core pass). Each pass's
// metrics are stamped with their cpus value, so the JSON artifact carries
// one row per (metric, cpus) pair and benchdiff gates each width
// independently — a contention regression that only shows up multi-core
// can't hide behind a healthy single-core number, and vice versa.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fastsketches"
	"fastsketches/client"
	"fastsketches/internal/adversary"
	"fastsketches/internal/autoscale"
	"fastsketches/internal/benchfmt"
	"fastsketches/internal/harness"
	"fastsketches/internal/mergedbench"
	"fastsketches/internal/ops"
	"fastsketches/internal/server"
	"fastsketches/internal/shard"
	"fastsketches/internal/stats"
)

// scale bundles the sweep parameters for the three effort levels.
type scale struct {
	lgMaxU       int // top of the stream-size sweep (paper: 23 = 8M)
	ppo          int
	maxTrials    int
	minTrials    int
	accTrials    int
	advTrials    int
	mixedUniques int
	mixedTrials  int
	scalUniques  int
	scalTrials   int
	maxThreads   int
}

var (
	quickScale = scale{
		lgMaxU: 16, ppo: 1, maxTrials: 256, minTrials: 2, accTrials: 64,
		advTrials: 2000, mixedUniques: 1 << 18, mixedTrials: 2,
		scalUniques: 1 << 19, scalTrials: 2, maxThreads: 4,
	}
	defaultScale = scale{
		lgMaxU: 20, ppo: 2, maxTrials: 2048, minTrials: 4, accTrials: 256,
		advTrials: 20000, mixedUniques: 1 << 20, mixedTrials: 4,
		scalUniques: 1 << 21, scalTrials: 3, maxThreads: 8,
	}
	fullScale = scale{
		lgMaxU: 23, ppo: 4, maxTrials: 1 << 12, minTrials: 16, accTrials: 4096,
		advTrials: 200000, mixedUniques: 1 << 23, mixedTrials: 16,
		scalUniques: 1 << 23, scalTrials: 16, maxThreads: 32,
	}
)

// artifact collects the run's metrics when -json is given; scenarios feed
// it through record and main writes it out at the end.
var artifact *benchfmt.Report

// metricCpus is the GOMAXPROCS value of the current -cpus pass, stamped onto
// every recorded metric; 0 outside a sweep (single ambient pass).
var metricCpus int

func record(m benchfmt.Metric) {
	if artifact != nil {
		if m.Cpus == 0 {
			m.Cpus = metricCpus
		}
		artifact.Add(m)
	}
}

// parseCpus parses the -cpus flag value ("1,4") into GOMAXPROCS values.
func parseCpus(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-cpus: %q is not a positive integer", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	quick := flag.Bool("quick", false, "fast smoke-run parameters")
	full := flag.Bool("full", false, "paper-scale parameters (very slow)")
	jsonPath := flag.String("json", "", "write scenario metrics as a benchfmt JSON artifact to this file")
	cpusFlag := flag.String("cpus", "", "comma-separated GOMAXPROCS values to sweep (e.g. 1,4); metrics are stamped per value")
	cpuProfilePath := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfilePath := flag.String("memprofile", "", "write a heap profile (after a forced GC) at the end of the run to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchrunner [-quick|-full] [-json FILE] [-cpus N,N] [-cpuprofile FILE] [-memprofile FILE] TEST\nTESTs: figure1 figure3 figure4 figure5a figure5b figure6a figure6b figure7 figure8 table1 table2 quantiles-error sharded mergedquery reshard autoscale server ingest view window checkpoint baseline all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if *cpuProfilePath != "" {
		f, err := os.Create(*cpuProfilePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	cpusList, err := parseCpus(*cpusFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sc := defaultScale
	scaleName := "default"
	if *quick {
		sc = quickScale
		scaleName = "quick"
	}
	if *full {
		sc = fullScale
		scaleName = "full"
	}
	if *jsonPath != "" {
		artifact = benchfmt.New("benchrunner", scaleName)
		artifact.GoMaxProcs = runtime.GOMAXPROCS(0)
		artifact.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	}

	test := flag.Arg(0)
	fmt.Printf("# benchrunner %s  (GOMAXPROCS=%d, NumCPU=%d, %s)\n",
		test, runtime.GOMAXPROCS(0), runtime.NumCPU(), time.Now().Format(time.RFC3339))

	run := func(name string, fn func(scale)) {
		fmt.Printf("\n## %s\n", name)
		start := time.Now()
		fn(sc)
		fmt.Printf("# %s done in %v\n", name, time.Since(start).Round(time.Millisecond))
	}

	tests := map[string]func(scale){
		"figure1":         figure1,
		"figure3":         figure3,
		"figure4":         figure4,
		"figure5a":        func(s scale) { figure5(s, 1.0) },
		"figure5b":        func(s scale) { figure5(s, 0.04) },
		"figure6a":        figure6a,
		"figure6b":        figure6b,
		"figure7":         figure7,
		"figure8":         figure8,
		"table1":          table1,
		"table2":          table2,
		"quantiles-error": quantilesError,
		"sharded":         sharded,
		"mergedquery":     mergedQuery,
		"reshard":         reshard,
		"autoscale":       autoscaleScenario,
		"server":          serverScenario,
		"ingest":          ingestScenario,
		"view":            viewScenario,
		"window":          windowScenario,
		"checkpoint":      checkpointScenario,
		"ops":             opsScenario,
	}
	// baseline is the fixed scenario set the CI bench-baseline job runs and
	// benchdiff gates: the scale-out layers, not the paper figures.
	baselineOrder := []string{"sharded", "mergedquery", "reshard", "autoscale", "server", "ingest", "view", "window", "checkpoint", "ops"}
	finish := func() {
		if *cpuProfilePath != "" {
			pprof.StopCPUProfile()
			fmt.Printf("# wrote CPU profile to %s\n", *cpuProfilePath)
		}
		if *memProfilePath != "" {
			f, err := os.Create(*memProfilePath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			runtime.GC() // materialise the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("# wrote heap profile to %s\n", *memProfilePath)
		}
		if artifact != nil {
			if err := artifact.WriteFile(*jsonPath); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("# wrote %d metrics to %s\n", len(artifact.Metrics), *jsonPath)
		}
	}
	var order []string
	switch test {
	case "all":
		order = []string{"table1", "figure3", "figure4", "figure1", "figure5a", "figure5b",
			"figure6a", "figure6b", "figure7", "figure8", "table2", "quantiles-error", "sharded",
			"mergedquery", "reshard", "autoscale", "server", "ingest", "view", "window", "checkpoint", "ops"}
	case "baseline":
		order = baselineOrder
	default:
		if _, ok := tests[test]; !ok {
			fmt.Fprintf(os.Stderr, "unknown test %q\n", test)
			flag.Usage()
			os.Exit(2)
		}
		order = []string{test}
	}
	runOrder := func() {
		for _, name := range order {
			run(name, tests[name])
		}
	}
	if len(cpusList) == 0 {
		runOrder()
	} else {
		orig := runtime.GOMAXPROCS(0)
		for _, n := range cpusList {
			runtime.GOMAXPROCS(n)
			metricCpus = n
			fmt.Printf("\n#### pass GOMAXPROCS=%d\n", n)
			runOrder()
		}
		runtime.GOMAXPROCS(orig)
		metricCpus = 0
	}
	finish()
}

// figure1: scalability of the concurrent Θ sketch vs a lock-based sketch,
// update-only workload, b=1, k=4096 (paper Figure 1).
func figure1(sc scale) {
	fmt.Println("threads\tconcurrent_Mops\tlockbased_Mops")
	conc := harness.ScalabilityProfile(harness.ScalabilityConfig{
		MaxThreads: sc.maxThreads, Uniques: sc.scalUniques, Trials: sc.scalTrials,
		LgK: 12, BufferSize: 1,
	})
	lock := harness.ScalabilityProfile(harness.ScalabilityConfig{
		MaxThreads: sc.maxThreads, Uniques: sc.scalUniques, Trials: sc.scalTrials,
		LgK: 12, BufferSize: 1, LockBased: true,
	})
	for i := range conc {
		fmt.Printf("%d\t%.2f\t%.2f\n", conc[i].Threads, conc[i].MopsPerSec, lock[i].MopsPerSec)
	}
}

// figure3: regions where the strong adversary hides 0 vs r elements, over
// the joint range of M(k), M(k+r) (paper Figure 3).
func figure3(sc scale) {
	_ = sc
	const n, k = 1 << 15, 1 << 10
	// Plot window centred on k/n = 1/32 ≈ 0.031.
	grid := adversary.Figure3Grid(n, k, 0.025, 0.040, 31)
	fmt.Println("Mk\tMkr\tregion") // region: 0 → g=0 (light gray), 1 → g=r (dark gray), -1 infeasible
	for _, p := range grid {
		region := -1
		if p.Feasible {
			region = 0
			if p.PicksR {
				region = 1
			}
		}
		fmt.Printf("%.5f\t%.5f\t%d\n", p.X, p.Y, region)
	}
}

// figure4: distribution of the sequential estimator e and the weak-adversary
// estimator e_Aw (paper Figure 4).
func figure4(sc scale) {
	const n, k, r = 1 << 15, 1 << 10, 8
	sim := adversary.NewSimulator(n, k, r, 1)
	seq, _, weak := sim.Run(sc.advTrials)
	lo, hi := float64(n)*0.85, float64(n)*1.15
	centres, seqD := adversary.Histogram(seq, lo, hi, 60)
	_, weakD := adversary.Histogram(weak, lo, hi, 60)
	fmt.Println("estimate\tdensity_seq\tdensity_weak")
	for i := range centres {
		fmt.Printf("%.1f\t%.3e\t%.3e\n", centres[i], seqD[i], weakD[i])
	}
}

// figure5: accuracy pitchforks (paper Figures 5a/5b), k=4096.
func figure5(sc scale, e float64) {
	cfg := harness.AccuracyConfig{
		LgMinU: 0, LgMaxU: sc.lgMaxU, PPO: sc.ppo, Trials: sc.accTrials,
		LgK: 12, MaxError: e, CapRE: 0.1,
	}
	if e >= 1 {
		cfg.BufferSize = 16
	}
	pts := harness.AccuracyProfile(cfg)
	fmt.Println("uniques\ttrials\tmeanRE\tQ01\tQ25\tQ50\tQ75\tQ99")
	for _, p := range pts {
		fmt.Printf("%d\t%d\t%.5f\t%.5f\t%.5f\t%.5f\t%.5f\t%.5f\n",
			p.Uniques, p.Trials, p.MeanRE, p.Q01, p.Q25, p.Q50, p.Q75, p.Q99)
	}
}

// figure6a: write-only throughput over the full stream-size sweep for
// several writer counts plus lock-based baselines (paper Figure 6a).
func figure6a(sc scale) {
	writerCounts := []int{1, 2, 4}
	lockCounts := []int{1, 4}
	fmt.Print("uniques")
	for _, w := range writerCounts {
		fmt.Printf("\tconc_%dw_Mops", w)
	}
	for _, w := range lockCounts {
		fmt.Printf("\tlock_%dw_Mops", w)
	}
	fmt.Println()

	var cols [][]harness.ThroughputPoint
	for _, w := range writerCounts {
		cols = append(cols, harness.SpeedProfile(harness.SpeedConfig{
			LgMinU: 0, LgMaxU: sc.lgMaxU, PPO: sc.ppo,
			MaxTrials: sc.maxTrials, MinTrials: sc.minTrials,
			Writers: w, LgK: 12, MaxError: 0.04,
		}))
	}
	for _, w := range lockCounts {
		cols = append(cols, harness.SpeedProfile(harness.SpeedConfig{
			LgMinU: 0, LgMaxU: sc.lgMaxU, PPO: sc.ppo,
			MaxTrials: sc.maxTrials, MinTrials: sc.minTrials,
			Writers: w, LgK: 12, MaxError: 1.0, LockBased: true,
		}))
	}
	for i := range cols[0] {
		fmt.Printf("%d", cols[0][i].Uniques)
		for _, col := range cols {
			fmt.Printf("\t%.3f", col[i].MopsPerSec)
		}
		fmt.Println()
	}
}

// figure6b: zoom on large stream sizes (paper Figure 6b).
func figure6b(sc scale) {
	lgMin := sc.lgMaxU - 4
	writerCounts := []int{1, 2, 4}
	fmt.Print("uniques")
	for _, w := range writerCounts {
		fmt.Printf("\tconc_%dw_Mops", w)
	}
	fmt.Println("\tlock_1w_Mops")
	var cols [][]harness.ThroughputPoint
	for _, w := range writerCounts {
		cols = append(cols, harness.SpeedProfile(harness.SpeedConfig{
			LgMinU: lgMin, LgMaxU: sc.lgMaxU, PPO: sc.ppo,
			MaxTrials: sc.minTrials * 2, MinTrials: sc.minTrials,
			Writers: w, LgK: 12, MaxError: 0.04,
		}))
	}
	cols = append(cols, harness.SpeedProfile(harness.SpeedConfig{
		LgMinU: lgMin, LgMaxU: sc.lgMaxU, PPO: sc.ppo,
		MaxTrials: sc.minTrials * 2, MinTrials: sc.minTrials,
		Writers: 1, LgK: 12, MaxError: 1.0, LockBased: true,
	}))
	for i := range cols[0] {
		fmt.Printf("%d", cols[0][i].Uniques)
		for _, col := range cols {
			fmt.Printf("\t%.3f", col[i].MopsPerSec)
		}
		fmt.Println()
	}
}

// figure7: mixed read-write workload — 1 and 2 writers with 10 background
// readers, concurrent vs lock-based (paper Figure 7).
func figure7(sc scale) {
	fmt.Println("variant\twriters\treaders\tMops\tqueries")
	for _, writers := range []int{1, 2} {
		for _, lock := range []bool{false, true} {
			res := harness.MixedProfile(harness.MixedConfig{
				Writers: writers, Readers: 10, ReaderPause: time.Millisecond,
				Uniques: sc.mixedUniques, Trials: sc.mixedTrials,
				LgK: 12, MaxError: 0.04, LockBased: lock,
			})
			name := "concurrent"
			if lock {
				name = "lockbased"
			}
			fmt.Printf("%s\t%d\t%d\t%.3f\t%d\n", name, writers, res.Readers, res.MopsPerSec, res.QueriesRun)
		}
		// And without background readers, for the "with and without" claim.
		for _, lock := range []bool{false, true} {
			res := harness.MixedProfile(harness.MixedConfig{
				Writers: writers, Readers: 1, ReaderPause: time.Hour, // effectively no reads
				Uniques: sc.mixedUniques, Trials: sc.mixedTrials,
				LgK: 12, MaxError: 0.04, LockBased: lock,
			})
			name := "concurrent_noreaders"
			if lock {
				name = "lockbased_noreaders"
			}
			fmt.Printf("%s\t%d\t0\t%.3f\t%d\n", name, writers, res.MopsPerSec, res.QueriesRun)
		}
	}
}

// figure8: speedup of eager (e=0.04) over no-eager (e=1.0) on small streams
// (paper Figure 8).
func figure8(sc scale) {
	pts := harness.EagerSpeedupProfile(0, 14, sc.ppo, sc.maxTrials, sc.minTrials)
	fmt.Println("uniques\teager_Mops\tnoeager_delegate_Mops\tnoeager_buffered_Mops\tspeedup_vs_delegate")
	for _, p := range pts {
		fmt.Printf("%d\t%.3f\t%.3f\t%.3f\t%.3f\n", p.Uniques, p.EagerMops, p.NoEagerDelegateMops, p.NoEagerBufferedMops, p.Speedup)
	}
}

// table1: Θ error analysis (paper Table 1: r=8, k=2^10, n=2^15).
func table1(sc scale) {
	rows := adversary.Table1(1<<15, 1<<10, 8, sc.advTrials, 1)
	fmt.Println("estimator\tmean_estimate\tmean/n\tRSE\tclosed_form_mean\tclosed_form_RSE_bound")
	n := float64(int(1) << 15)
	for _, r := range rows {
		fmt.Printf("%s\t%.1f\t%.4f\t%.4f\t%.1f\t%.4f\n",
			r.Name, r.MeanEstimate, r.MeanEstimate/n, r.RSE, r.ClosedFormMean, r.ClosedFormRSEUB)
	}
	fmt.Printf("# paper: sequential RSE ≤ 1/√(k−2) = %.4f; weak bound = %.4f; strong numerical ≈ 0.031–0.038\n",
		stats.SeqRSEBound(1<<10), stats.WeakAdversaryRSEBound(1<<10, 8))
}

// table2: performance/accuracy tradeoff as a function of k (paper Table 2).
func table2(sc scale) {
	rows := harness.Table2(harness.Table2Config{
		LgKs:   []int{8, 10, 12},
		LgMinU: 0, LgMaxU: sc.lgMaxU, PPO: sc.ppo,
		SpeedTrials: sc.maxTrials / 2, AccTrials: sc.accTrials / 2,
	})
	fmt.Println("k\tthpt_crossing_point\tmax_err_Q50\tmax_err_Q99")
	for _, r := range rows {
		fmt.Printf("%d\t%d\t%.2f\t%.2f\n", r.K, r.CrossingPoint, r.MaxMedianRE, r.MaxQ99RE)
	}
	fmt.Println("# paper (12-core Xeon): k=256→15000/0.16/0.27, k=1024→100000/0.05/0.13, k=4096→700000/0.03/0.05")
}

// sharded: the scale-out scenario — a sharded Θ registry sketch under a
// write-heavy workload with live merged queries, swept over shard counts.
// Shows the throughput/staleness trade: ingest Mops should grow with S
// (one propagator per shard) while the combined relaxation bound S·r grows
// linearly. Also reports measured merged-query latency, which grows with S
// (one snapshot fold per shard).
func sharded(sc scale) {
	writers := sc.maxThreads
	if writers > 4 {
		writers = 4
	}
	uniques := sc.mixedUniques
	fmt.Println("shards\twriters\tingest_Mops\trelaxation_Sr\tquery_us\tfinal_RE")
	for _, s := range []int{1, 2, 4, 8} {
		var ingestNs, queryNs float64
		var queries int64
		var finalRE float64
		relax := 0
		for tr := 0; tr < sc.mixedTrials; tr++ {
			sk, err := shard.NewTheta(12, shard.Config{
				Shards: s, Writers: writers, MaxError: 0.04,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			stopQ := make(chan struct{})
			var qwg sync.WaitGroup
			qwg.Add(1)
			go func() {
				defer qwg.Done()
				for {
					select {
					case <-stopQ:
						return
					default:
					}
					t0 := time.Now()
					_ = sk.Estimate()
					queryNs += float64(time.Since(t0).Nanoseconds())
					queries++
					time.Sleep(time.Millisecond)
				}
			}()
			base := uint64(tr) << 44
			per := uniques / writers
			start := time.Now()
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					lo := base + uint64(w*per)
					for i := 0; i < per; i++ {
						sk.Update(w, lo+uint64(i))
					}
				}(w)
			}
			wg.Wait()
			ingestNs += float64(time.Since(start).Nanoseconds())
			close(stopQ)
			qwg.Wait()
			relax = sk.Relaxation()
			sk.Close()
			finalRE = sk.Estimate()/float64(writers*per) - 1
		}
		nUpd := float64(uniques/writers*writers) * float64(sc.mixedTrials)
		nsPer := ingestNs / nUpd
		avgQueryUs := 0.0
		if queries > 0 {
			avgQueryUs = queryNs / float64(queries) / 1e3
		}
		fmt.Printf("%d\t%d\t%.3f\t%d\t%.2f\t%.4f\n",
			s, writers, 1e3/nsPer, relax, avgQueryUs, finalRE)
		record(benchfmt.Metric{Scenario: "sharded",
			Name: fmt.Sprintf("theta/S=%d/ingest", s), OpsPerSec: 1e9 / nsPer})
		record(benchfmt.Metric{Scenario: "sharded",
			Name: fmt.Sprintf("theta/S=%d/mergedquery", s), NsPerOp: avgQueryUs * 1e3})
	}
}

// mergedquery: the merge-on-query plane — ns/op and allocs/op of merged
// queries through the registry across shard counts, for the pooled path
// (reused accumulator from the sketch's pool; the hot path), the
// caller-owned QueryInto path, and the pre-refactor fresh-accumulator-per-
// query path kept as the allocation baseline. Θ and HLL pooled queries are
// zero-alloc steady-state; quantiles and Count-Min amortise to zero once
// the reused accumulator's capacity stabilises.
func mergedQuery(sc scale) {
	uniques := sc.mixedUniques
	if uniques > 1<<16 {
		uniques = 1 << 16 // query cost is snapshot-, not stream-, sized
	}
	fmt.Println("family\tshards\tpath\tns_op\tallocs_op\tbytes_op")
	for _, s := range []int{1, 2, 4, 8} {
		suite, err := mergedbench.NewSuite(s, uniques)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, c := range suite.Cases() {
			res := testing.Benchmark(c.Fn)
			fmt.Printf("%s\t%d\t%s\t%d\t%d\t%d\n",
				c.Family, s, c.Path, res.NsPerOp(), res.AllocsPerOp(), res.AllocedBytesPerOp())
			// Θ/HLL pooled and caller-owned paths are the pinned zero-alloc
			// contract (PR 2); "fresh" is the allocation baseline, never
			// pinned.
			pinned := c.Path != "fresh" && (c.Family == "theta" || c.Family == "hll")
			record(benchfmt.Metric{Scenario: "mergedquery",
				Name:            fmt.Sprintf("%s/S=%d/%s", c.Family, s, c.Path),
				NsPerOp:         float64(res.NsPerOp()),
				AllocsPerOp:     benchfmt.Int64(res.AllocsPerOp()),
				BytesPerOp:      benchfmt.Int64(res.AllocedBytesPerOp()),
				PinnedZeroAlloc: pinned,
			})
		}
	}
}

// reshard: the live-resharding scenario — writers hammer a sharded Θ sketch
// for a fixed wall-clock run while a resizer grows the group mid-run and
// collapses it again later; a sampler reports the ingest-throughput
// timeline in fixed windows. The output shows the throughput dip during
// each epoch-swap transition (building the new shard frameworks, the writer
// grace period, draining and folding the old shards) and the new
// steady-state level after it, together with the relaxation bound S·r the
// query plane pays at each instant — the throughput/staleness trade-off
// being walked live. The final column marks samples that overlap a Resize
// call; the summary lines report each transition's wall-clock drain time.
func reshard(sc scale) {
	writers := sc.maxThreads
	if writers > 4 {
		writers = 4
	}
	runFor := 3 * time.Second
	switch {
	case sc.lgMaxU <= quickScale.lgMaxU:
		runFor = time.Second
	case sc.lgMaxU >= fullScale.lgMaxU:
		runFor = 10 * time.Second
	}
	const window = 25 * time.Millisecond
	schedule := []struct {
		at time.Duration // absolute offset into the run
		S  int
	}{{runFor / 3, 8}, {2 * runFor / 3, 2}}

	sk, err := shard.NewTheta(12, shard.Config{Shards: 2, Writers: writers, MaxError: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var updates atomic.Int64
	var resizing atomic.Bool
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 40
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				for j := 0; j < 256; j++ { // amortise the stop check
					sk.Update(w, base+i*256+uint64(j))
				}
				updates.Add(256)
			}
		}(w)
	}

	type transition struct {
		from, to int
		at, took time.Duration
	}
	var transitions []transition
	wg.Add(1)
	go func() {
		defer wg.Done()
		start := time.Now()
		for _, step := range schedule {
			select {
			case <-stop:
				return
			case <-time.After(step.at - time.Since(start)):
			}
			from := sk.Shards()
			resizing.Store(true)
			t0 := time.Now()
			if err := sk.Resize(step.S); err != nil {
				// A failed live resize is the one thing this scenario exists
				// to catch: fail the process so the CI smoke step goes red.
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			took := time.Since(t0)
			resizing.Store(false)
			transitions = append(transitions, transition{from, step.S, step.at, took})
		}
	}()

	fmt.Println("t_ms\tingest_Mops\tshards\trelaxation_Sr\tresizing")
	start := time.Now()
	last := int64(0)
	for time.Since(start) < runFor {
		time.Sleep(window)
		now := updates.Load()
		mops := float64(now-last) / window.Seconds() / 1e6
		last = now
		inResize := 0
		if resizing.Load() {
			inResize = 1
		}
		fmt.Printf("%d\t%.2f\t%d\t%d\t%d\n",
			time.Since(start).Milliseconds(), mops, sk.Shards(), sk.Relaxation(), inResize)
	}
	close(stop)
	wg.Wait()
	sk.Close()
	for _, tr := range transitions {
		fmt.Printf("# resize %d→%d at %v drained in %v\n", tr.from, tr.to, tr.at, tr.took)
		// Drain times are scheduler- and load-sensitive: trajectory data,
		// not a gate.
		record(benchfmt.Metric{Scenario: "reshard",
			Name:          fmt.Sprintf("drain/%dto%d", tr.from, tr.to),
			NsPerOp:       float64(tr.took.Nanoseconds()),
			Informational: true,
		})
	}
	fmt.Printf("# total ingested: %d updates; final estimate %.0f\n", updates.Load(), sk.Estimate())
	record(benchfmt.Metric{Scenario: "reshard",
		Name: "theta/ingest_across_swaps", OpsPerSec: float64(updates.Load()) / runFor.Seconds()})
}

// autoscaleScenario: the closed control loop over the relaxation parameter —
// a bursty load timeline drives the autoscale controller, which walks S up
// under the burst and back down through the lull, with throughput and the
// S·r staleness bound reported per sampling window and summarised per
// S-epoch. Writers hammer a sharded Count-Min sketch flat-out for the first
// ~45% of the run, then drop to a trickle; the controller (real clock, the
// production path) samples the sketch's pressure counters and resizes under
// its hysteresis policy. Count-Min is the demonstrative family because it
// never pre-filters: every update exerts propagation pressure, which is the
// pressure sharding parallelises (a Θ sketch deep in its sampling regime
// filters almost everything locally, so its controller correctly sees
// almost no pressure — and more shards would not make filtering faster).
// The walk is timing-sensitive (real clock, sub-second phases), so a
// missing walk is reported loudly but does not fail the process: the
// deterministic assertion of the closed loop lives in
// TestStressAutoscaleUnderFire, which paces the controller through a
// ManualClock and runs under -race in CI.
func autoscaleScenario(sc scale) {
	writers := sc.maxThreads
	if writers > 4 {
		writers = 4
	}
	runFor := 3 * time.Second
	switch {
	case sc.lgMaxU <= quickScale.lgMaxU:
		runFor = 1600 * time.Millisecond
	case sc.lgMaxU >= fullScale.lgMaxU:
		runFor = 8 * time.Second
	}
	burstFor := runFor * 45 / 100
	const window = 25 * time.Millisecond

	sk, err := shard.NewCountMin(0.001, 0.01, shard.Config{Shards: 2, Writers: writers, MaxError: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	policy := autoscale.Policy{
		MinShards: 2, MaxShards: 8,
		HighWater: 250e3, LowWater: 50e3,
		SustainedUp: 2, SustainedDown: 2,
		SampleEvery: window, Cooldown: 3 * window,
		// Cap the transitional window at 16·r — loose for this 8-shard
		// sweep ((8+8)·r at worst), shown here because production policies
		// should always set it.
		MaxTransitionalRelaxation: 16 * sk.ShardRelaxation(),
	}
	ctl, err := autoscale.New(sk, policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ctl.Start()

	var updates atomic.Int64
	var light atomic.Bool
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 40
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				for j := 0; j < 64; j++ {
					sk.Update(w, base+i*64+uint64(j))
				}
				updates.Add(64)
				if light.Load() {
					time.Sleep(10 * time.Millisecond) // the lull: a trickle
				}
			}
		}(w)
	}

	type sample struct {
		mops   float64
		shards int
	}
	var samples []sample
	fmt.Println("t_ms\tingest_Mops\tshards\trelaxation_Sr\tphase")
	start := time.Now()
	last := int64(0)
	burstUpdates := int64(-1)
	for time.Since(start) < runFor {
		time.Sleep(window)
		if burstUpdates < 0 && time.Since(start) >= burstFor {
			burstUpdates = updates.Load()
			light.Store(true)
		}
		now := updates.Load()
		mops := float64(now-last) / window.Seconds() / 1e6
		last = now
		phase := "burst"
		if light.Load() {
			phase = "lull"
		}
		s := sk.Shards()
		samples = append(samples, sample{mops, s})
		fmt.Printf("%d\t%.2f\t%d\t%d\t%s\n",
			time.Since(start).Milliseconds(), mops, s, sk.Relaxation(), phase)
	}
	close(stop)
	wg.Wait()
	ctl.Stop()
	sk.Close()

	// Per-epoch summary: consecutive windows at the same S are one epoch of
	// the walk.
	for i := 0; i < len(samples); {
		j, sum := i, 0.0
		for ; j < len(samples) && samples[j].shards == samples[i].shards; j++ {
			sum += samples[j].mops
		}
		fmt.Printf("# epoch S=%d: %d windows (%v), avg %.2f Mops, S·r=%d\n",
			samples[i].shards, j-i, time.Duration(j-i)*window,
			sum/float64(j-i), samples[i].shards*sk.ShardRelaxation())
		i = j
	}
	st := ctl.Stats()
	fmt.Printf("# controller: %d samples, %d ups, %d downs, %d held-cooldown, %d at-bound, final S=%d\n",
		st.Samples, st.ScaleUps, st.ScaleDowns, st.HeldCooldown, st.HeldAtBound, sk.Shards())
	if burstUpdates < 0 {
		burstUpdates = updates.Load()
	}
	record(benchfmt.Metric{Scenario: "autoscale",
		Name: "countmin/burst_ingest", OpsPerSec: float64(burstUpdates) / burstFor.Seconds()})
	record(benchfmt.Metric{Scenario: "autoscale",
		Name: "scale_ups", Value: float64(st.ScaleUps), Informational: true})
	record(benchfmt.Metric{Scenario: "autoscale",
		Name: "scale_downs", Value: float64(st.ScaleDowns), Informational: true})
	if st.ScaleUps == 0 || st.ScaleDowns == 0 {
		// The walk is the scenario's reason to exist, but it depends on the
		// machine sustaining the burst rate in real time — warn loudly
		// (visible in the CI log, and as zeroed scale_ups/scale_downs in
		// the JSON artifact) rather than failing a possibly-throttled run.
		// The deterministic walk assertion is TestStressAutoscaleUnderFire.
		fmt.Fprintf(os.Stderr, "autoscale: WARNING: controller never walked S (ups=%d downs=%d) — throttled machine, or a real control-loop regression\n",
			st.ScaleUps, st.ScaleDowns)
	}
}

// quantilesError: Section 6.2 validation — the relaxed PAC bound ε_r holds
// for live queries and converges to ε as n grows.
func quantilesError(sc scale) {
	sizes := []int{1 << 12, 1 << 14, 1 << 16, 1 << 18}
	trials := 2
	if sc.accTrials >= 256 {
		trials = 4
	}
	pts := harness.QuantilesErrorProfile(128, 8, sizes, trials)
	fmt.Println("n\tr\tmax_observed_dev\tmax_dev/bound\teps_r\teps_seq")
	for _, p := range pts {
		fmt.Printf("%d\t%d\t%.5f\t%.3f\t%.5f\t%.5f\n",
			p.N, p.Relaxation, p.MaxDev, p.MaxDevOverBound, p.RelaxedBound, p.SeqEps)
	}
}

// serverScenario: the network front-end — an in-process sketchd (server
// over a registry) on loopback, driven through the fastsketches/client
// library exactly as a remote service would be. Reports batched-ingest
// throughput (N concurrent client goroutines, each with its own batch
// buffer and pooled connection, fanned server-side into writer lanes) and
// round-trip query latency with end-to-end allocs/op for the pinned
// zero-alloc serving paths (Θ merged estimate through per-connection
// accumulator reuse; Count-Min per-key count). The allocation figures are
// machine-independent contracts; throughput/latency gate the serving path's
// trajectory the same way the in-process scenarios do.
func serverScenario(sc scale) {
	writers := sc.maxThreads
	if writers > 4 {
		writers = 4
	}
	uniques := sc.mixedUniques
	const batchSize = 4096

	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{
		Shards: 2, Writers: writers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv := server.New(reg)
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	cl, err := client.Dial(ln.Addr().String(), client.Options{
		Conns: writers, BatchSize: batchSize,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Batched-ingest throughput: each goroutine streams its share through
	// its own batch buffer; every item is acked (completed server-side)
	// by the time the clock stops.
	per := uniques / writers
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b := cl.NewBatch(client.Theta, "bench.users")
			base := uint64(w) << 40
			for i := 0; i < per; i++ {
				if err := b.Add(base + uint64(i)); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
			if err := b.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}(w)
	}
	wg.Wait()
	ingestNs := float64(time.Since(start).Nanoseconds())
	nUpd := float64(per * writers)
	fmt.Println("metric\tvalue")
	fmt.Printf("ingest_conns\t%d\n", writers)
	fmt.Printf("batch_items\t%d\n", batchSize)
	fmt.Printf("ingest_Mops\t%.3f\n", nUpd*1e3/ingestNs)
	record(benchfmt.Metric{Scenario: "server",
		Name: "theta/batched_ingest", OpsPerSec: 1e9 * nUpd / ingestNs})

	// Count-Min stream for the per-key path.
	cb := cl.NewBatch(client.CountMin, "bench.api")
	for i := 0; i < 1<<14; i++ {
		if err := cb.Add(uint64(i % 64)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := cb.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Warm pools, accumulators, buffers on both paths before measuring.
	for i := 0; i < 64; i++ {
		if _, err := cl.ThetaEstimate("bench.users"); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if _, err := cl.Count("bench.api", 7); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	// Merged-estimate latency: fold-dominated (S snapshot folds per query),
	// so the ns/op gate tracks the serving fold path, not raw loopback RTT —
	// a baseline recorded on slow hardware stays a valid ceiling for faster
	// CI runners. Allocs/op is the end-to-end pinned zero-alloc contract
	// (client encode → server QueryInto via the per-connection accumulator →
	// client decode).
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cl.ThetaEstimate("bench.users"); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	})
	fmt.Printf("theta/estimate_us\t%.2f\n", float64(res.NsPerOp())/1e3)
	fmt.Printf("theta/estimate_allocs\t%d\n", res.AllocsPerOp())
	record(benchfmt.Metric{Scenario: "server",
		Name:            "theta/estimate",
		NsPerOp:         float64(res.NsPerOp()),
		AllocsPerOp:     benchfmt.Int64(res.AllocsPerOp()),
		BytesPerOp:      benchfmt.Int64(res.AllocedBytesPerOp()),
		PinnedZeroAlloc: true,
	})

	// Per-key count: RTT-bound (the owning-shard read is nanoseconds), so a
	// sequential ns/op would gate the runner's loopback latency rather than
	// our code. Gate it as pipelined throughput instead — 4 concurrent
	// queriers per proc keep the wire full, and an ops/sec floor recorded on
	// slow hardware only trips on genuine serving-path regressions — with
	// the allocs/op contract still pinned.
	res = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetParallelism(4)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := cl.Count("bench.api", 7); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		})
	})
	fmt.Printf("countmin/count_pipelined_kops\t%.1f\n", 1e6/float64(res.NsPerOp()))
	fmt.Printf("countmin/count_allocs\t%d\n", res.AllocsPerOp())
	record(benchfmt.Metric{Scenario: "server",
		Name:            "countmin/count",
		OpsPerSec:       1e9 / float64(res.NsPerOp()),
		AllocsPerOp:     benchfmt.Int64(res.AllocsPerOp()),
		BytesPerOp:      benchfmt.Int64(res.AllocedBytesPerOp()),
		PinnedZeroAlloc: true,
	})

	// A served resize under load, for the drain-time trajectory.
	t0 := time.Now()
	if err := cl.Resize(client.Theta, "bench.users", 4); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("resize_2to4_ms\t%.2f\n", float64(time.Since(t0).Microseconds())/1e3)
	record(benchfmt.Metric{Scenario: "server",
		Name: "resize/2to4", NsPerOp: float64(time.Since(t0).Nanoseconds()),
		Informational: true})

	cl.Close()
	srv.Shutdown()
	<-serveDone
	reg.Close()
}

// ingestScenario: the ingest hot path in isolation — the full server path
// (client encode → TCP → frame decode → per-lane scratch decode → ring
// dispatch across lane workers → batched writer updates → ack) measured as
// ns/item and acked batches/sec across batch sizes straddling the lane
// fan-out threshold and across lane counts, with allocs per synchronous
// flush pinned at zero. Count-Min is the measured family because it never
// pre-filters: every item takes the full propagation path, so ns/item is a
// property of the serving machinery rather than of a shrinking Θ. Four
// concurrent ingesters (each with its own connection and batch buffer) keep
// the lane rings pipelined the way production clients do.
func ingestScenario(sc scale) {
	const ingesters = 4
	items := 1 << 19
	switch {
	case sc.lgMaxU <= quickScale.lgMaxU:
		items = 1 << 17
	case sc.lgMaxU >= fullScale.lgMaxU:
		items = 1 << 21
	}

	fmt.Println("lanes\tbatch\tns_item\tbatches_per_sec\tflush_allocs")
	for _, lanes := range []int{1, 4} {
		reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{
			Shards: 2, Writers: lanes,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		srv := server.New(reg)
		serveDone := make(chan error, 1)
		go func() { serveDone <- srv.Serve(ln) }()
		cl, err := client.Dial(ln.Addr().String(), client.Options{
			Conns: ingesters, BatchSize: 8192,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}

		for _, batch := range []int{64, 1024, 4096} {
			name := fmt.Sprintf("bench.ingest.l%d.b%d", lanes, batch)
			flush := func(b *client.Batch) {
				if err := b.Flush(); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
			// Warm: sketch creation, lane workers, per-lane decode scratch,
			// client frame buffers.
			wb := cl.NewBatch(client.CountMin, name)
			for i := 0; i < 4*batch; i++ {
				if err := wb.Add(uint64(i % 1024)); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				if wb.Len() == batch {
					flush(wb)
				}
			}
			flush(wb)

			// Throughput: wall-clock over the whole concurrent stream; every
			// batch is acked (items completed server-side) inside the window.
			per := items / ingesters
			var wg sync.WaitGroup
			start := time.Now()
			for g := 0; g < ingesters; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					b := cl.NewBatch(client.CountMin, name)
					for i := 0; i < per; i++ {
						if err := b.Add(uint64(i % 1024)); err != nil {
							fmt.Fprintln(os.Stderr, err)
							os.Exit(1)
						}
						if b.Len() == batch {
							flush(b)
						}
					}
					flush(b)
				}(g)
			}
			wg.Wait()
			elapsed := time.Since(start)
			nsItem := float64(elapsed.Nanoseconds()) / float64(per*ingesters)
			batchesPerSec := float64(per*ingesters) / float64(batch) / elapsed.Seconds()

			// Allocation contract: one synchronous fill+flush per op, steady
			// state — the ring dispatch and batched writer path allocate
			// nothing (the old path paid a WaitGroup escape per batch).
			ab := cl.NewBatch(client.CountMin, name)
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for j := 0; j < batch; j++ {
						if err := ab.Add(uint64(j % 1024)); err != nil {
							fmt.Fprintln(os.Stderr, err)
							os.Exit(1)
						}
					}
					flush(ab)
				}
			})

			fmt.Printf("%d\t%d\t%.1f\t%.1f\t%d\n",
				lanes, batch, nsItem, batchesPerSec, res.AllocsPerOp())
			record(benchfmt.Metric{Scenario: "ingest",
				Name:      fmt.Sprintf("countmin/lanes=%d/batch=%d", lanes, batch),
				NsPerOp:   nsItem, // per item, not per batch
				OpsPerSec: batchesPerSec,
			})
			record(benchfmt.Metric{Scenario: "ingest",
				Name:            fmt.Sprintf("countmin/lanes=%d/batch=%d/flush", lanes, batch),
				AllocsPerOp:     benchfmt.Int64(res.AllocsPerOp()),
				BytesPerOp:      benchfmt.Int64(res.AllocedBytesPerOp()),
				PinnedZeroAlloc: true,
			})
		}

		cl.Close()
		srv.Shutdown()
		<-serveDone
		reg.Close()
	}
}

// viewSink keeps view-scenario query results observable so the folds are not
// elided.
var viewSink float64

// viewScenario: the materialized-view query plane — merged-query latency
// through a published view at S=1 vs S=8 against the live S-shard fold. The
// view fold copies ONE merged accumulator regardless of S, so its latency
// must be flat across shard counts (the S=8/S=1 ratio is the O(1)-in-S
// contract: target ≤ 2, vs the live fold whose cost grows with S) and
// zero-alloc steady-state (pinned). RefreshViewNow's cost — the O(S) fold
// the refresher pays so queriers don't — is reported as the trajectory's
// informational counterpart. The refresher is parked on a manual clock with
// a never-expiring view, so the timer only ever sees the query path.
func viewScenario(sc scale) {
	uniques := sc.mixedUniques
	if uniques > 1<<16 {
		uniques = 1 << 16 // query cost is snapshot-, not stream-, sized
	}
	fmt.Println("shards\tpath\tns_op\tallocs_op\tbytes_op")
	viewNs := map[int]float64{}
	for _, s := range []int{1, 8} {
		sk, err := shard.NewTheta(12, shard.Config{Shards: s, Writers: 1, MaxError: 1})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for i := 0; i < uniques; i++ {
			sk.Update(0, uint64(i))
		}
		// Writers are quiescent from here, so the live fold and the view
		// measure the same stable state.
		clk := autoscale.NewManualClock(time.Unix(1<<20, 0))
		if err := sk.EnableView(shard.ViewConfig{
			RefreshEvery: time.Hour, MaxAge: -1, Clock: clk,
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}

		acc := sk.NewAccumulator()
		sk.QueryInto(acc) // warm the caller-owned accumulator
		resView := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sk.QueryInto(acc)
				viewSink = acc.Estimate()
			}
		})
		fmt.Printf("%d\tview\t%d\t%d\t%d\n",
			s, resView.NsPerOp(), resView.AllocsPerOp(), resView.AllocedBytesPerOp())
		viewNs[s] = float64(resView.NsPerOp())
		record(benchfmt.Metric{Scenario: "view",
			Name:            fmt.Sprintf("theta/S=%d/query", s),
			NsPerOp:         float64(resView.NsPerOp()),
			AllocsPerOp:     benchfmt.Int64(resView.AllocsPerOp()),
			BytesPerOp:      benchfmt.Int64(resView.AllocedBytesPerOp()),
			PinnedZeroAlloc: true,
		})

		resRefresh := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !sk.RefreshViewNow() {
					fmt.Fprintln(os.Stderr, "view: RefreshViewNow failed mid-benchmark")
					os.Exit(1)
				}
			}
		})
		fmt.Printf("%d\trefresh\t%d\t-\t-\n", s, resRefresh.NsPerOp())
		record(benchfmt.Metric{Scenario: "view",
			Name:          fmt.Sprintf("theta/S=%d/refresh", s),
			NsPerOp:       float64(resRefresh.NsPerOp()),
			Informational: true, // the O(S) cost moved off the query path
		})

		sk.DisableView()
		resLive := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sk.QueryInto(acc)
				viewSink = acc.Estimate()
			}
		})
		fmt.Printf("%d\tlivefold\t%d\t%d\t%d\n",
			s, resLive.NsPerOp(), resLive.AllocsPerOp(), resLive.AllocedBytesPerOp())
		record(benchfmt.Metric{Scenario: "view",
			Name:        fmt.Sprintf("theta/S=%d/livefold", s),
			NsPerOp:     float64(resLive.NsPerOp()),
			AllocsPerOp: benchfmt.Int64(resLive.AllocsPerOp()),
			BytesPerOp:  benchfmt.Int64(resLive.AllocedBytesPerOp()),
		})
		sk.Close()
	}
	ratio := viewNs[8] / viewNs[1]
	fmt.Printf("# view query latency S=8 / S=1 = %.2f (O(1)-in-S contract: ≤ 2)\n", ratio)
	record(benchfmt.Metric{Scenario: "view",
		Name: "theta/query_ratio_s8_over_s1", Value: ratio, Informational: true})
	if ratio > 2 {
		// Same posture as the autoscale walk: loud in the log and visible in
		// the artifact, but timing-sensitive enough (sub-µs folds) that the
		// hard process failure stays with the deterministic -race stress test.
		fmt.Fprintf(os.Stderr, "view: WARNING: S=8 view query is %.2fx S=1 (want ≤ 2): the view fold is not O(1) in S\n", ratio)
	}
}

// windowSink keeps windowed-query results observable so the folds are not
// elided.
var windowSink uint64

// windowScenario: the windowed query plane — windowed Count-Min queries
// through the materialized suffix-merge with every ring slot populated, at
// Slots=4 vs Slots=32. Rotation folds the closed slots into one suffix
// accumulator, so windowed query latency must be flat in the slot count
// (the Slots=32/Slots=4 ratio is the O(1)-in-Slots contract: target ≤ 2)
// and zero-alloc steady-state (pinned), for the caller-owned WindowQueryInto
// path, the pooled WindowCount scalar, and the time-decayed read.
// RotateNow's cost — the epoch drain plus the suffix-merge refresh the
// rotator pays so queriers don't — is reported as the trajectory's
// informational counterpart. The rotator is parked on a manual clock, so
// the timers only ever see explicit rotations.
func windowScenario(sc scale) {
	uniques := sc.mixedUniques
	if uniques > 1<<16 {
		uniques = 1 << 16 // query cost is summary-, not stream-, sized
	}
	fmt.Println("slots\tpath\tns_op\tallocs_op\tbytes_op")
	queryNs := map[int]float64{}
	for _, slots := range []int{4, 32} {
		sk, err := shard.NewCountMin(1e-4, 0.01, shard.Config{Shards: 4, Writers: 1, MaxError: 1})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		clk := autoscale.NewManualClock(time.Unix(1<<20, 0))
		if err := sk.EnableWindow(shard.WindowConfig{
			Interval: time.Hour, Slots: slots, Decay: 0.5, Clock: clk,
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Populate every ring slot with a closed interval, then one live
		// interval on top; writers are quiescent from here, so the timers
		// below measure a stable state.
		perSlot := uniques / slots
		for s := 0; s <= slots; s++ {
			for i := 0; i < perSlot; i++ {
				sk.Update(0, uint64(s*perSlot+i))
			}
			if s < slots && !sk.RotateNow() {
				fmt.Fprintln(os.Stderr, "window: RotateNow failed while populating")
				os.Exit(1)
			}
		}

		acc := sk.NewAccumulator()
		sk.WindowQueryInto(acc) // warm the caller-owned accumulator
		paths := []struct {
			name   string
			pinned bool
			fn     func()
		}{
			{"query", true, func() { sk.WindowQueryInto(acc); windowSink = acc.N() }},
			{"count", true, func() { windowSink, _ = sk.WindowCount(7) }},
			{"decayed", true, func() { windowSink, _ = sk.DecayedCount(7) }},
		}
		for _, p := range paths {
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p.fn()
				}
			})
			fmt.Printf("%d\t%s\t%d\t%d\t%d\n",
				slots, p.name, res.NsPerOp(), res.AllocsPerOp(), res.AllocedBytesPerOp())
			if p.name == "query" {
				queryNs[slots] = float64(res.NsPerOp())
			}
			record(benchfmt.Metric{Scenario: "window",
				Name:            fmt.Sprintf("countmin/slots=%d/%s", slots, p.name),
				NsPerOp:         float64(res.NsPerOp()),
				AllocsPerOp:     benchfmt.Int64(res.AllocsPerOp()),
				BytesPerOp:      benchfmt.Int64(res.AllocedBytesPerOp()),
				PinnedZeroAlloc: p.pinned,
			})
		}

		resRotate := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !sk.RotateNow() {
					fmt.Fprintln(os.Stderr, "window: RotateNow failed mid-benchmark")
					os.Exit(1)
				}
			}
		})
		fmt.Printf("%d\trotate\t%d\t-\t-\n", slots, resRotate.NsPerOp())
		record(benchfmt.Metric{Scenario: "window",
			Name:          fmt.Sprintf("countmin/slots=%d/rotate", slots),
			NsPerOp:       float64(resRotate.NsPerOp()),
			Informational: true, // the suffix fold moved off the query path
		})
		sk.Close()
	}
	ratio := queryNs[32] / queryNs[4]
	fmt.Printf("# windowed query latency Slots=32 / Slots=4 = %.2f (O(1)-in-Slots contract: ≤ 2)\n", ratio)
	record(benchfmt.Metric{Scenario: "window",
		Name: "countmin/query_ratio_slots32_over_slots4", Value: ratio, Informational: true})
	if ratio > 2 {
		// Same posture as the view walk: loud in the log and visible in the
		// artifact, but timing-sensitive enough that the hard process failure
		// stays with the deterministic stress tests.
		fmt.Fprintf(os.Stderr, "window: WARNING: Slots=32 windowed query is %.2fx Slots=4 (want ≤ 2): the suffix-merge is not O(1) in Slots\n", ratio)
	}
}

// checkpointScenario: the persistence plane — steady-state cost of taking a
// registry-wide checkpoint, the tax sketchd's durability loop pays every
// interval. The encode folds every sketch through the same pooled
// accumulators merged queries use and appends into a reused buffer, so with
// a pre-grown dst the steady-state checkpoint is zero-alloc (pinned, the
// same contract TestCheckpointZeroAllocSteadyState enforces per-op). The
// registry is quiesced first (a real resize drains every writer lane
// synchronously) so the measured cost is the encoder's, not the asynchronous
// ingest tail's. Checkpoint size and the warm-start restore cost (fresh
// registry + Restore of the blob — what a recovering sketchd pays before it
// can serve) are reported as informational trajectory data.
func checkpointScenario(sc scale) {
	uniques := sc.mixedUniques
	if uniques > 1<<16 {
		uniques = 1 << 16 // checkpoint cost is snapshot-, not stream-, sized
	}
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{
		Shards: 4, Writers: 2, MaxError: 1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer reg.Close()
	thH, _ := reg.OpenTheta("ck.users", fastsketches.Spec{})
	hH, _ := reg.OpenHLL("ck.ips", fastsketches.Spec{})
	qH, _ := reg.OpenQuantiles("ck.lat", fastsketches.Spec{})
	cmH, _ := reg.OpenCountMin("ck.api", fastsketches.Spec{})
	th, h, q, cm := thH.Sketch(), hH.Sketch(), qH.Sketch(), cmH.Sketch()
	for i := 0; i < uniques; i++ {
		k := uint64(i)
		th.Update(i%2, k)
		h.Update(i%2, k)
		q.Update(i%2, float64(i))
		cm.Update(i%2, k%1024)
	}
	// Quiesce: propagation is asynchronous, and a propagator's merge
	// republishes its snapshot with a fresh O(retained) copy — the ingest
	// path's allocation, not the encoder's. A real resize (4→3) drains
	// every published and partial writer buffer synchronously.
	for _, err := range []error{
		thH.Resize(3), hH.Resize(3), qH.Resize(3), cmH.Resize(3),
	} {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	dst := reg.AppendCheckpoint(nil) // grow the caller-owned buffer once
	size := len(dst)
	resEnc := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = reg.AppendCheckpoint(dst[:0])
		}
	})
	resWrite := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := reg.Checkpoint(io.Discard); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	})
	resRestore := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fresh, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{
				Shards: 4, Writers: 2, MaxError: 1,
			})
			if err == nil {
				err = fresh.Restore(bytes.NewReader(dst))
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fresh.Close()
		}
	})

	fmt.Println("metric\tvalue")
	fmt.Printf("sketches\t4\n")
	fmt.Printf("checkpoint_bytes\t%d\n", size)
	fmt.Printf("append_us\t%.2f\n", float64(resEnc.NsPerOp())/1e3)
	fmt.Printf("append_allocs\t%d\n", resEnc.AllocsPerOp())
	fmt.Printf("write_us\t%.2f\n", float64(resWrite.NsPerOp())/1e3)
	fmt.Printf("write_allocs\t%d\n", resWrite.AllocsPerOp())
	fmt.Printf("restore_ms\t%.2f\n", float64(resRestore.NsPerOp())/1e6)
	record(benchfmt.Metric{Scenario: "checkpoint",
		Name:            "registry/append",
		NsPerOp:         float64(resEnc.NsPerOp()),
		AllocsPerOp:     benchfmt.Int64(resEnc.AllocsPerOp()),
		BytesPerOp:      benchfmt.Int64(resEnc.AllocedBytesPerOp()),
		PinnedZeroAlloc: true,
	})
	record(benchfmt.Metric{Scenario: "checkpoint",
		Name:            "registry/write",
		NsPerOp:         float64(resWrite.NsPerOp()),
		AllocsPerOp:     benchfmt.Int64(resWrite.AllocsPerOp()),
		BytesPerOp:      benchfmt.Int64(resWrite.AllocedBytesPerOp()),
		PinnedZeroAlloc: true,
	})
	record(benchfmt.Metric{Scenario: "checkpoint",
		Name: "registry/size_bytes", Value: float64(size), Informational: true})
	record(benchfmt.Metric{Scenario: "checkpoint",
		Name:          "registry/restore",
		NsPerOp:       float64(resRestore.NsPerOp()),
		Informational: true, // dominated by registry construction: trajectory, not a gate
	})
}

// opsScenario: the observability tax — or rather its absence. A registry
// with a multi-tenant population is scraped continuously (the full /metrics
// exposition rendered to a discarded writer) while the ingest and merged-
// query hot paths are timed; both must stay zero-alloc per op (pinned), the
// wait-free-counter contract that lets a scraper poll at any rate without
// touching sketch throughput. The scrape itself and a lifecycle sweep are
// recorded as informational trajectories (both allocate by design: the
// exposition buffer and the sweep's info snapshot).
func opsScenario(sc scale) {
	const tenants = 8
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{Shards: 2, Writers: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer reg.Close()

	var cms [tenants]*fastsketches.CountMinHandle
	for i := range cms {
		h, err := reg.OpenCountMin(fmt.Sprintf("ops.tenant%d", i), fastsketches.Spec{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for j := uint64(0); j < 4096; j++ {
			h.Update(0, j%512)
		}
		cms[i] = h
	}
	if _, err := reg.OpenTheta("ops.uniques", fastsketches.Spec{}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	mc := autoscale.NewManualClock(time.Unix(1<<20, 0))
	mgr, err := ops.NewManager(reg, ops.Config{IdleTTL: time.Hour, MemBudget: 1 << 40, Clock: mc})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	obs := &ops.IngestObserver{}
	for i := int64(1); i <= 4096; i <<= 1 {
		obs.ObserveChunk(i, i*300)
	}
	col := &ops.Collector{Reg: reg, Manager: mgr, Ingest: obs}

	// Scrape and sweep costs in isolation, for the trajectory.
	resScrape := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := col.WriteMetrics(io.Discard); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	})
	resSweep := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mgr.Sweep()
		}
	})

	// The gated contract: the ingest hot path under a concurrent-scrape
	// antagonist. The scraper polls on a Prometheus-like cadence (its own
	// allocations are real but bounded per second) while the timed loop
	// hammers updates; benchmark alloc counters are process-wide, so the
	// pinned zero comes from the update path running millions of ops against
	// the antagonist's bounded hundreds of scrapes — any per-op allocation
	// on the ingest side would show up as ≥ 1.
	stop := make(chan struct{})
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = col.WriteMetrics(io.Discard)
			time.Sleep(10 * time.Millisecond)
		}
	}()

	ing := cms[0]
	resIngest := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ing.Update(0, uint64(i)%512)
		}
	})
	acc := cms[1].NewAccumulator()
	cms[1].QueryInto(acc) // warm the caller-owned accumulator
	resQuery := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cms[1].QueryInto(acc)
		}
	})
	close(stop)
	<-scrapeDone

	fmt.Println("metric\tns_op\tallocs_op")
	fmt.Printf("scrape\t%d\t%d\n", resScrape.NsPerOp(), resScrape.AllocsPerOp())
	fmt.Printf("sweep\t%d\t0\n", resSweep.NsPerOp())
	fmt.Printf("ingest_under_scrape\t%d\t%d\n", resIngest.NsPerOp(), resIngest.AllocsPerOp())
	fmt.Printf("query_under_scrape\t%d\t%d\n", resQuery.NsPerOp(), resQuery.AllocsPerOp())

	record(benchfmt.Metric{Scenario: "ops",
		Name:            "ingest/scrape-antagonist",
		NsPerOp:         float64(resIngest.NsPerOp()),
		AllocsPerOp:     benchfmt.Int64(resIngest.AllocsPerOp()),
		BytesPerOp:      benchfmt.Int64(resIngest.AllocedBytesPerOp()),
		PinnedZeroAlloc: true,
	})
	record(benchfmt.Metric{Scenario: "ops",
		Name:          "query/scrape-antagonist",
		NsPerOp:       float64(resQuery.NsPerOp()),
		Informational: true, // op count too small to separate from the antagonist's allocs
	})
	record(benchfmt.Metric{Scenario: "ops",
		Name:          "scrape/tenants=9",
		NsPerOp:       float64(resScrape.NsPerOp()),
		AllocsPerOp:   benchfmt.Int64(resScrape.AllocsPerOp()),
		BytesPerOp:    benchfmt.Int64(resScrape.AllocedBytesPerOp()),
		Informational: true, // exposition buffer allocates by design
	})
	record(benchfmt.Metric{Scenario: "ops",
		Name:          "sweep/tenants=9",
		NsPerOp:       float64(resSweep.NsPerOp()),
		Informational: true,
	})
}
