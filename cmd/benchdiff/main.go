// benchdiff is the CI benchmark regression gate: it compares a fresh
// benchrunner JSON artifact against the committed baseline and exits
// non-zero when the perf trajectory regressed.
//
//	benchdiff [-threshold 0.20] [-skip-throughput] [-allow-missing] BASELINE FRESH
//
// Gates (per baseline metric; informational metrics are never gated):
//
//   - ops_per_sec below baseline·(1−threshold) fails;
//   - ns_op above baseline·(1+threshold) fails;
//   - on paths pinned zero-alloc (the merge-on-query contract of PR 2/3),
//     ANY allocs/op increase fails, regardless of threshold;
//   - a gated baseline metric missing from the fresh report fails, unless
//     -allow-missing.
//
// -skip-throughput restricts the gate to the machine-independent
// allocation contracts — the right mode when baseline and fresh come from
// unlike hardware. The default threshold of 0.20 is the repository's
// regression budget: a >20% throughput drop on like hardware fails CI.
//
// Artifacts from a benchrunner -cpus sweep carry one row per (metric,
// GOMAXPROCS) pair, keyed "scenario/name@cpus=N": the single-core and
// multi-core rows of the same path are distinct metrics here and gate
// independently, so baseline and fresh must be produced with the same
// -cpus list (a width present only in the baseline fails as missing
// unless -allow-missing).
package main

import (
	"flag"
	"fmt"
	"os"

	"fastsketches/internal/benchfmt"
)

func main() {
	threshold := flag.Float64("threshold", 0.20, "tolerated relative slowdown of ops_per_sec / ns_op metrics")
	skipThroughput := flag.Bool("skip-throughput", false, "gate only the allocation contracts (for cross-machine comparisons)")
	allowMissing := flag.Bool("allow-missing", false, "tolerate baseline metrics absent from the fresh report")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [flags] BASELINE.json FRESH.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	baseline, err := benchfmt.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fresh, err := benchfmt.ReadFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	gated := 0
	for _, m := range baseline.Metrics {
		if !m.Informational {
			gated++
		}
	}
	fmt.Printf("benchdiff: %d baseline metrics (%d gated) vs %d fresh; threshold %.0f%%, skip-throughput=%v\n",
		len(baseline.Metrics), gated, len(fresh.Metrics), *threshold*100, *skipThroughput)

	regs := benchfmt.Compare(baseline, fresh, benchfmt.CompareOptions{
		ThroughputThreshold: *threshold,
		SkipThroughput:      *skipThroughput,
		AllowMissing:        *allowMissing,
	})
	if len(regs) == 0 {
		fmt.Println("benchdiff: no regressions")
		return
	}
	for _, r := range regs {
		fmt.Printf("REGRESSION %s\n", r)
	}
	fmt.Printf("benchdiff: %d regression(s)\n", len(regs))
	os.Exit(1)
}
