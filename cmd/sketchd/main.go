// Sketchd is the network front-end daemon: a fastsketches.Registry served
// over TCP with the internal/wire protocol — batched ingest fanned into
// writer lanes, pipelined merged queries through per-connection reusable
// accumulators, and remote admin ops (create / live resize / autoscale /
// drop / names / info). Use the fastsketches/client library to talk to it:
//
//	sketchd -addr 127.0.0.1:7600 -shards 4 -writers 4
//
// Every flag mirrors a RegistryConfig field, so a sketchd instance is
// exactly an in-process registry lifted onto the network: served queries
// carry the same S·r staleness bound as in-process merged queries, and an
// acked ingest batch is a set of completed updates under that bound.
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: the listener closes,
// in-flight batches complete and are acked, received pipeline frames are
// served, lane workers exit, and the registry drains every sketch buffer
// exactly before the process reports the drain and exits 0.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fastsketches"
	"fastsketches/internal/ops"
	"fastsketches/internal/server"
	"fastsketches/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7600", "TCP listen address")
	shards := flag.Int("shards", 0, "initial shards S per sketch (0 = library default)")
	writers := flag.Int("writers", 0, "writer lanes per sketch (0 = library default)")
	maxError := flag.Float64("max-error", 0, "per-shard eager-phase error budget e (0 = default)")
	bufferSize := flag.Int("buffer", 0, "per-writer buffer b override (0 = derive per family)")
	thetaLgK := flag.Int("theta-lgk", 0, "log2 Θ sample count per shard (0 = default)")
	hllP := flag.Int("hll-p", 0, "HLL precision per shard (0 = default)")
	quantK := flag.Int("quantiles-k", 0, "quantiles summary parameter per shard (0 = default)")
	cmEps := flag.Float64("cm-eps", 0, "Count-Min epsilon (0 = default)")
	cmDelta := flag.Float64("cm-delta", 0, "Count-Min delta (0 = default)")
	winInterval := flag.Duration("window-interval", 0, "default sliding-window rotation interval for every sketch (0 = no default window)")
	winSlots := flag.Int("window-slots", 0, "default window's closed-interval capacity (0 = library default; requires -window-interval)")
	winDecay := flag.Float64("window-decay", 0, "default Count-Min exponential decay factor in [0,1) (0 = none; requires -window-interval)")
	restorePath := flag.String("restore", "", "checkpoint file to warm-start from (missing file is not an error)")
	ckptPath := flag.String("checkpoint", "", "checkpoint file to write periodically and on shutdown")
	ckptEvery := flag.Duration("checkpoint-every", 30*time.Second, "periodic checkpoint interval (with -checkpoint)")
	metricsAddr := flag.String("metrics-addr", "", "HTTP listen address for /metrics in Prometheus text format (empty = disabled)")
	idleTTL := flag.Duration("idle-ttl", 0, "evict sketches idle (no completed ingest) this long (0 = disabled)")
	memBudget := flag.Int64("mem-budget", 0, "resident sketch-bytes budget; over it, idle tenants shrink then shed (0 = unlimited)")
	opsSweepEvery := flag.Duration("ops-sweep-every", 5*time.Second, "lifecycle sweep interval (with -idle-ttl or -mem-budget)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "usage: sketchd [flags]\n")
		flag.PrintDefaults()
		os.Exit(2)
	}

	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{
		Shards: *shards, Writers: *writers,
		MaxError: *maxError, BufferSize: *bufferSize,
		ThetaLgK: *thetaLgK, HLLPrecision: *hllP, QuantilesK: *quantK,
		CountMinEpsilon: *cmEps, CountMinDelta: *cmDelta,
		WindowInterval: *winInterval, WindowSlots: *winSlots, WindowDecay: *winDecay,
	})
	if err != nil {
		log.Fatalf("sketchd: %v", err)
	}
	if *restorePath != "" {
		switch err := reg.RestoreFile(*restorePath); {
		case errors.Is(err, fs.ErrNotExist):
			// First boot: nothing to warm-start from yet. With -checkpoint
			// pointing at the same path, the file appears on first write.
			log.Printf("sketchd: no checkpoint at %s, starting empty", *restorePath)
		case err != nil:
			log.Fatalf("sketchd: restore %s: %v", *restorePath, err)
		default:
			log.Printf("sketchd: restored %s", *restorePath)
		}
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("sketchd: %v", err)
	}
	cfg := reg.Config()
	log.Printf("sketchd: serving on %s (S=%d, W=%d per sketch)",
		ln.Addr(), cfg.Shards, cfg.Writers)

	srv := server.New(reg)
	var ck *fastsketches.Checkpointer
	if *ckptPath != "" {
		ck, err = fastsketches.NewCheckpointer(reg, *ckptPath, *ckptEvery, nil,
			func(err error) { log.Printf("sketchd: checkpoint: %v", err) })
		if err != nil {
			log.Fatalf("sketchd: %v", err)
		}
		ck.Start()
		srv.SetCheckpoint(ck.CheckpointNow)
		log.Printf("sketchd: checkpointing to %s every %v", *ckptPath, *ckptEvery)
	}
	var mgr *ops.Manager
	if *idleTTL > 0 || *memBudget > 0 {
		mgr, err = ops.NewManager(reg, ops.Config{
			IdleTTL:    *idleTTL,
			MemBudget:  *memBudget,
			SweepEvery: *opsSweepEvery,
			// Evictions and sheds must retire sketches through the server's
			// quiescing drop — a bare registry drop would close a sketch
			// under its live lane workers.
			Drop: srv.DropSketch,
			Logf: log.Printf,
		})
		if err != nil {
			log.Fatalf("sketchd: %v", err)
		}
		mgr.Start()
		srv.SetOps(func() wire.OpsStats {
			st := mgr.Stats()
			return wire.OpsStats{
				Sweeps: st.Sweeps, Evictions: st.Evictions,
				BudgetSheds: st.BudgetSheds, BudgetShrinks: st.BudgetShrinks,
				ResidentBytes: st.ResidentBytes, BudgetBytes: st.BudgetBytes,
				Sketches: st.Sketches,
			}
		})
		log.Printf("sketchd: lifecycle sweeps every %v (idle-ttl %v, mem-budget %d)",
			*opsSweepEvery, *idleTTL, *memBudget)
	}
	var ms *ops.MetricsServer
	if *metricsAddr != "" {
		obs := &ops.IngestObserver{}
		srv.SetIngestObserver(obs.ObserveChunk)
		ms, err = ops.ListenMetrics(*metricsAddr, &ops.Collector{
			Reg: reg, Manager: mgr, Ingest: obs,
		})
		if err != nil {
			log.Fatalf("sketchd: metrics: %v", err)
		}
		log.Printf("sketchd: metrics on http://%s/metrics", ms.Addr())
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	// The sweeper stops before the server (no eviction may race the lane
	// teardown) and the metrics listener stops before the registry closes
	// (a scrape must never read a closing registry).
	stopOps := func() {
		if mgr != nil {
			mgr.Stop()
		}
		if ms != nil {
			ms.Close()
		}
	}

	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigC:
		log.Printf("sketchd: %v — draining", sig)
	case err := <-serveErr:
		// A fatal accept error: still drain gracefully — handlers finish
		// and ack in-flight work before the registry closes.
		stopOps()
		srv.Shutdown()
		drainAndCheckpoint(reg, ck)
		log.Fatalf("sketchd: serve: %v", err)
	}

	stopOps()
	srv.Shutdown() // in-flight batches complete and are acked before this returns
	drainAndCheckpoint(reg, ck)
	log.Printf("sketchd: drained in-flight batches, registry closed; bye")
}

// drainAndCheckpoint closes the registry (exact drain of every sketch
// buffer) and then writes the final checkpoint, so the file on disk holds
// every acked update — checkpointing a closed registry reads its fully
// drained state. The periodic loop is stopped first so the two writers
// never interleave on the file.
func drainAndCheckpoint(reg *fastsketches.Registry, ck *fastsketches.Checkpointer) {
	if ck != nil {
		ck.Stop()
	}
	reg.Close()
	if ck != nil {
		if err := ck.CheckpointNow(); err != nil {
			log.Printf("sketchd: final checkpoint: %v", err)
		} else {
			log.Printf("sketchd: final checkpoint written")
		}
	}
}
