// sketchtool is a command-line interface to the sketch library, in the
// spirit of DataSketches' command-line tools: it builds sketches from
// streams on stdin, serialises them to files, and combines saved sketches
// with set operations.
//
//	sketchtool count   [-lgk 12] [-writers 4]          distinct count of stdin lines
//	sketchtool hll     [-p 12]                         distinct count via HLL
//	sketchtool quants  [-k 128] [-q 0.5,0.95,0.99]     quantiles of numeric stdin
//	sketchtool create  [-lgk 12] -o FILE               build Θ sketch, save to FILE
//	sketchtool merge   FILE...                         union of saved sketches
//	sketchtool inter   FILE1 FILE2                     intersection estimate
//	sketchtool anotb   FILE1 FILE2                     difference estimate A\B
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"

	"fastsketches"
	"fastsketches/internal/theta"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "count":
		err = runCount(args)
	case "hll":
		err = runHLL(args)
	case "quants":
		err = runQuants(args)
	case "create":
		err = runCreate(args)
	case "merge":
		err = runMerge(args)
	case "inter", "anotb":
		err = runSetOp(cmd, args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sketchtool:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: sketchtool COMMAND [flags] [files]
commands: count, hll, quants, create, merge, inter, anotb
`)
}

// lines streams stdin lines to the returned channel.
func lines() <-chan string {
	ch := make(chan string, 1024)
	go func() {
		defer close(ch)
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			ch <- sc.Text()
		}
	}()
	return ch
}

func runCount(args []string) error {
	fs := flag.NewFlagSet("count", flag.ExitOnError)
	lgk := fs.Int("lgk", 12, "log2 of nominal sample count")
	writers := fs.Int("writers", 4, "ingestion lanes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sk, err := fastsketches.NewConcurrentTheta(fastsketches.ThetaConfig{
		LgK: *lgk, Writers: *writers, MaxError: 0.04,
	})
	if err != nil {
		return err
	}
	in := lines()
	var wg sync.WaitGroup
	for w := 0; w < *writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for s := range in {
				sk.UpdateString(w, s)
			}
		}(w)
	}
	wg.Wait()
	sk.Close()
	lo, hi := sk.ConfidenceBounds(2)
	fmt.Printf("estimate\t%.0f\nbounds_2sigma\t%.0f\t%.0f\n", sk.Estimate(), lo, hi)
	return nil
}

func runHLL(args []string) error {
	fs := flag.NewFlagSet("hll", flag.ExitOnError)
	p := fs.Int("p", 12, "precision (2^p registers)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sk, err := fastsketches.NewConcurrentHLL(fastsketches.HLLConfig{P: *p, Writers: 1})
	if err != nil {
		return err
	}
	for s := range lines() {
		sk.UpdateString(0, s)
	}
	sk.Close()
	fmt.Printf("estimate\t%.0f\n", sk.Estimate())
	return nil
}

func runQuants(args []string) error {
	fs := flag.NewFlagSet("quants", flag.ExitOnError)
	k := fs.Int("k", 128, "summary parameter")
	qstr := fs.String("q", "0.5,0.95,0.99", "comma-separated quantile fractions")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var phis []float64
	for _, part := range strings.Split(*qstr, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return fmt.Errorf("bad quantile %q: %w", part, err)
		}
		phis = append(phis, v)
	}
	sk, err := fastsketches.NewConcurrentQuantiles(fastsketches.QuantilesConfig{K: *k, Writers: 1})
	if err != nil {
		return err
	}
	var n, skipped int
	for s := range lines() {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			skipped++
			continue
		}
		sk.Update(0, v)
		n++
	}
	sk.Close()
	snap := sk.Snapshot()
	fmt.Printf("n\t%d\nmin\t%g\nmax\t%g\n", snap.N(), snap.Min(), snap.Max())
	for i, phi := range phis {
		fmt.Printf("q%g\t%g\n", phi, snap.Quantile(phis[i]))
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "skipped %d non-numeric lines\n", skipped)
	}
	return nil
}

func runCreate(args []string) error {
	fs := flag.NewFlagSet("create", flag.ExitOnError)
	lgk := fs.Int("lgk", 12, "log2 of nominal sample count")
	out := fs.String("o", "", "output file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("create: -o FILE is required")
	}
	sk := fastsketches.NewThetaSketch(*lgk, 0)
	for s := range lines() {
		sk.UpdateHash(theta.HashString(s, fastsketches.DefaultSeed))
	}
	data, err := sk.MarshalBinary()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("estimate\t%.0f\nwrote\t%s\t%d bytes\n", sk.Estimate(), *out, len(data))
	return nil
}

func loadSketch(path string) (*theta.QuickSelect, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return theta.UnmarshalQuickSelect(data)
}

func runMerge(paths []string) error {
	if len(paths) < 2 {
		return fmt.Errorf("merge: need at least two sketch files")
	}
	u := fastsketches.ThetaUnion(12, 0)
	for _, p := range paths {
		sk, err := loadSketch(p)
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		u.Add(sk)
	}
	fmt.Printf("union_estimate\t%.0f\n", u.Estimate())
	return nil
}

func runSetOp(op string, paths []string) error {
	if len(paths) != 2 {
		return fmt.Errorf("%s: need exactly two sketch files", op)
	}
	a, err := loadSketch(paths[0])
	if err != nil {
		return fmt.Errorf("%s: %w", paths[0], err)
	}
	b, err := loadSketch(paths[1])
	if err != nil {
		return fmt.Errorf("%s: %w", paths[1], err)
	}
	switch op {
	case "inter":
		fmt.Printf("intersection_estimate\t%.0f\n", fastsketches.ThetaIntersect(a, b).Estimate())
	case "anotb":
		fmt.Printf("difference_estimate\t%.0f\n", fastsketches.ThetaAnotB(a, b).Estimate())
	}
	return nil
}
