// accuracy is a focused pitchfork profiler (paper Figure 5): it sweeps
// stream sizes, runs many single-writer trials per size, and prints the
// distribution of the live-query relative error as TSV. It is the
// counterpart of the artifact's ConcurrentThetaAccuracyProfile job.
package main

import (
	"flag"
	"fmt"

	"fastsketches/internal/harness"
)

func main() {
	lgMin := flag.Int("lgmin", 0, "log2 of smallest stream size")
	lgMax := flag.Int("lgmax", 18, "log2 of largest stream size")
	ppo := flag.Int("ppo", 2, "points per octave")
	trials := flag.Int("trials", 256, "trials per point")
	lgK := flag.Int("lgk", 12, "log2 of nominal sample count")
	e := flag.Float64("e", 0.04, "max concurrency error (1.0 disables eager propagation)")
	buf := flag.Int("b", 0, "local buffer size (0 = derive)")
	cap := flag.Float64("cap", 0.1, "clip |RE| at this value for presentation (0 = off)")
	flag.Parse()

	pts := harness.AccuracyProfile(harness.AccuracyConfig{
		LgMinU: *lgMin, LgMaxU: *lgMax, PPO: *ppo, Trials: *trials,
		LgK: *lgK, MaxError: *e, BufferSize: *buf, CapRE: *cap,
	})
	fmt.Printf("# accuracy pitchfork: k=%d e=%v trials=%d\n", 1<<*lgK, *e, *trials)
	fmt.Println("uniques\ttrials\tmeanRE\tQ01\tQ25\tQ50\tQ75\tQ99")
	for _, p := range pts {
		fmt.Printf("%d\t%d\t%.5f\t%.5f\t%.5f\t%.5f\t%.5f\t%.5f\n",
			p.Uniques, p.Trials, p.MeanRE, p.Q01, p.Q25, p.Q50, p.Q75, p.Q99)
	}
}
