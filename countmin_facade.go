package fastsketches

import (
	"fmt"

	"fastsketches/internal/core"
	"fastsketches/internal/countmin"
	"fastsketches/internal/murmur"
)

// CountMinConfig configures a ConcurrentCountMin.
type CountMinConfig struct {
	// Epsilon is the additive-error fraction: estimates exceed true counts
	// by at most Epsilon·N with probability 1−Delta. Default 0.001.
	Epsilon float64
	// Delta is the per-query failure probability. Default 0.01.
	Delta float64
	// Writers is the number of ingestion lanes. Default 1.
	Writers int
	// MaxError is the eager-phase error budget, as in ThetaConfig.
	// Default 0.04.
	MaxError float64
	// BufferSize overrides the per-writer buffer. Default 32.
	BufferSize int
	// Seed is the hash seed; 0 means DefaultSeed.
	Seed uint64
}

func (c *CountMinConfig) normalise() error {
	if c.Epsilon == 0 {
		c.Epsilon = 0.001
	}
	if c.Epsilon <= 0 || c.Epsilon >= 1 {
		return fmt.Errorf("%w: Epsilon must be in (0,1)", ErrConfig)
	}
	if c.Delta == 0 {
		c.Delta = 0.01
	}
	if c.Delta <= 0 || c.Delta >= 1 {
		return fmt.Errorf("%w: Delta must be in (0,1)", ErrConfig)
	}
	if c.Writers == 0 {
		c.Writers = 1
	}
	if c.Writers < 0 {
		return fmt.Errorf("%w: negative Writers", ErrConfig)
	}
	if c.MaxError == 0 {
		c.MaxError = 0.04
	}
	if c.BufferSize == 0 {
		c.BufferSize = 32
	}
	if c.BufferSize < 0 {
		return fmt.Errorf("%w: negative BufferSize", ErrConfig)
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	return nil
}

// ConcurrentCountMin is a Count-Min frequency sketch with concurrent
// ingestion and wait-free per-key frequency queries — a "future work"
// instantiation of the paper's framework for the heavy-hitter workloads its
// introduction cites.
type ConcurrentCountMin struct {
	comp *countmin.Composable
	fw   *core.Framework[uint64]
	seed uint64
}

// NewConcurrentCountMin builds and starts a concurrent Count-Min sketch.
func NewConcurrentCountMin(cfg CountMinConfig) (*ConcurrentCountMin, error) {
	if err := cfg.normalise(); err != nil {
		return nil, err
	}
	// Dimension like the sequential NewWithError.
	proto := countmin.NewWithError(cfg.Epsilon, cfg.Delta, cfg.Seed)
	comp := countmin.NewComposable(proto.Width(), proto.Depth(), cfg.Seed)
	fw := core.New[uint64](comp, core.Config{
		Workers:    cfg.Writers,
		BufferSize: cfg.BufferSize,
		MaxError:   cfg.MaxError,
		K:          proto.Width(),
	})
	fw.Start()
	return &ConcurrentCountMin{comp: comp, fw: fw, seed: cfg.Seed}, nil
}

// Update adds one occurrence of key on writer lane w.
func (c *ConcurrentCountMin) Update(w int, key uint64) { c.fw.Update(w, key) }

// UpdateString adds one occurrence of a string key on writer lane w.
func (c *ConcurrentCountMin) UpdateString(w int, key string) {
	// Count-Min re-hashes internally per row, so the element travels as the
	// raw 64-bit digest of the string.
	c.fw.Update(w, murmur.HashString(key, c.seed))
}

// Estimate returns the frequency estimate of key (wait-free). Relative to
// the propagated prefix it never underestimates; up to Relaxation()
// just-completed updates may not be reflected yet.
func (c *ConcurrentCountMin) Estimate(key uint64) uint64 { return c.comp.Estimate(key) }

// EstimateString is Estimate for string keys.
func (c *ConcurrentCountMin) EstimateString(key string) uint64 {
	return c.comp.Estimate(murmur.HashString(key, c.seed))
}

// N returns the total merged weight (wait-free).
func (c *ConcurrentCountMin) N() uint64 { return c.comp.N() }

// Relaxation returns the query staleness bound.
func (c *ConcurrentCountMin) Relaxation() int { return c.fw.Relaxation() }

// Close stops the propagator and drains all buffers.
func (c *ConcurrentCountMin) Close() { c.fw.Close() }

// Result copies the counters into a sequential sketch after Close.
func (c *ConcurrentCountMin) Result() *countmin.Sketch { return c.comp.Snapshot() }
