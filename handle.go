package fastsketches

import (
	"fmt"
	"time"

	"fastsketches/internal/autoscale"
	"fastsketches/internal/countmin"
	"fastsketches/internal/hll"
	"fastsketches/internal/quantiles"
	"fastsketches/internal/shard"
	"fastsketches/internal/theta"
)

// AutoscalePolicy parameterises an autoscaling controller — see
// autoscale.Policy for every knob. Aliased here so Spec literals can name
// it without importing the internal package.
type AutoscalePolicy = autoscale.Policy

// Spec declares a sketch's lifecycle in one place: its shard geometry, its
// materialized view, its autoscaling policy, and how the ops layer's
// eviction and budget sweeps may treat it. Open* applies the spec to the
// named sketch (creating it on first use) and returns a typed Handle — the
// one-call replacement for the per-family get/Resize/EnableView/Autoscale
// call sprawl. The zero Spec is valid and declares nothing: the sketch is
// created (or found) with the registry's defaults and left untouched.
type Spec struct {
	// Shards is the declared shard count S. 0 leaves the sketch at its
	// current (or the registry's default) S; a positive value live-resizes
	// the sketch whenever it differs — Open is declarative, so reopening
	// with a different Shards walks the throughput/staleness trade-off
	// exactly like Handle.Resize.
	Shards int
	// View, when non-nil, (re-)materializes the sketch's merged view under
	// this config: the refresher is re-armed on every Open that declares it
	// (idempotent per handle, mirroring ReplaceView). Nil leaves any
	// existing view untouched.
	View *ViewConfig
	// Autoscale, when non-nil, attaches an autoscaling controller under
	// this policy with replace semantics: a controller already driving the
	// sketch is stopped and swapped, never stacked. Nil leaves any existing
	// controller untouched.
	Autoscale *AutoscalePolicy
	// Window, when non-nil, declares a sliding window (and, for Count-Min,
	// exponential time decay) under this config: windowed queries cover the
	// live rotation interval plus the last Slots closed intervals, while the
	// cumulative plane keeps serving the whole stream. Open is declarative
	// with replace semantics, but an equal declaration is a no-op: reopening
	// with the same Interval/Slots/Decay keeps the running window and its
	// ring (no history loss), a different config collapses the old window
	// into the cumulative plane and re-arms a fresh one. Nil leaves any
	// existing window untouched.
	Window *WindowConfig
	// IdleTTL, when positive, overrides the ops sweeper's default idle TTL
	// for this sketch: no ingest for longer than this and the sweeper drops
	// it. 0 keeps the sketch on the sweeper's default (which may itself be
	// "never evict"). Negative values are rejected.
	IdleTTL time.Duration
	// Pinned exempts the sketch from idle eviction and budget shedding
	// entirely — the budget class for sketches that must survive quiet
	// periods and memory pressure.
	Pinned bool
}

// Sketch is the uniform surface the generic Handle requires of a family's
// sharded sketch: the lane-disciplined ingest plane, the zero-alloc merged
// query plane, live resizing, introspection, and the materialized-view
// switches. All four family wrappers of the shard package satisfy it
// through the embedded generic Sharded layer; family-specific queries
// (Theta.Estimate, Quantiles.Quantile, CountMin.Estimate, UpdateString)
// stay on the concrete type, reachable via Handle.Sketch.
type Sketch[T any, A any] interface {
	Update(lane int, item T)
	UpdateBatch(lane int, items []T)
	QueryInto(acc A)
	MergeInto(acc A)
	NewAccumulator() A
	Resize(shards int) error
	Shards() int
	Relaxation() int
	ShardRelaxation() int
	Eager() bool
	Pressure() PressureSample
	SizeBytes() int64
	EnableView(ViewConfig) error
	DisableView() bool
	ViewEnabled() bool
	ViewLag() time.Duration
	RefreshViewNow() bool
	EnableWindow(WindowConfig) error
	DisableWindow() bool
	WindowEnabled() bool
	WindowSettings() (WindowConfig, bool)
	WindowStats() (WindowInfo, bool)
	WindowQueryInto(acc A) bool
	WindowMergeInto(acc A) bool
	RotateNow() bool
}

// Handle is a typed, family-generic handle on one registered sketch: T is
// the item type, A the reusable merge accumulator, S the concrete sharded
// sketch (so family-specific queries stay statically dispatched — no
// interface boxing on the ingest or query hot paths). Obtain one from
// OpenTheta / OpenHLL / OpenQuantiles / OpenCountMin; the per-family
// aliases (ThetaHandle, …) spell the instantiations.
//
// A handle is a cheap value tied to the sketch it was opened on. After
// Drop (from any handle, or Registry.Drop) the sketch's propagators are
// stopped: queries through a retained handle still summarise the final
// drained state, but updates would block forever — the same contract as a
// retained *shard.Theta. Reopening the name yields a fresh sketch and
// fresh handles.
type Handle[T any, A any, S Sketch[T, A]] struct {
	r      *Registry
	family string
	name   string
	sk     S
}

// Per-family Handle instantiations — what the Open* constructors return.
type (
	// ThetaHandle is the distinct-count (Θ) sketch handle.
	ThetaHandle = Handle[uint64, *theta.Union, *shard.Theta]
	// HLLHandle is the HyperLogLog distinct-count sketch handle.
	HLLHandle = Handle[uint64, *hll.Sketch, *shard.HLL]
	// QuantilesHandle is the quantiles sketch handle.
	QuantilesHandle = Handle[float64, *quantiles.Accumulator, *shard.Quantiles]
	// CountMinHandle is the Count-Min frequency sketch handle.
	CountMinHandle = Handle[uint64, *countmin.Sketch, *shard.CountMin]
)

// OpenTheta returns a typed handle on the named Θ distinct-count sketch,
// creating the sketch on first use and applying spec (see Spec; the zero
// Spec declares nothing). Open is idempotent: reopening a live name returns
// a handle on the same sketch, re-applying only what the spec declares.
func (r *Registry) OpenTheta(name string, spec Spec) (*ThetaHandle, error) {
	sk := r.getTheta(name)
	if err := r.applySpec("theta", name, sk, spec); err != nil {
		return nil, err
	}
	return &ThetaHandle{r: r, family: "theta", name: name, sk: sk}, nil
}

// OpenHLL is OpenTheta for the named HLL sketch.
func (r *Registry) OpenHLL(name string, spec Spec) (*HLLHandle, error) {
	sk := r.getHLL(name)
	if err := r.applySpec("hll", name, sk, spec); err != nil {
		return nil, err
	}
	return &HLLHandle{r: r, family: "hll", name: name, sk: sk}, nil
}

// OpenQuantiles is OpenTheta for the named quantiles sketch.
func (r *Registry) OpenQuantiles(name string, spec Spec) (*QuantilesHandle, error) {
	sk := r.getQuantiles(name)
	if err := r.applySpec("quantiles", name, sk, spec); err != nil {
		return nil, err
	}
	return &QuantilesHandle{r: r, family: "quantiles", name: name, sk: sk}, nil
}

// OpenCountMin is OpenTheta for the named Count-Min sketch.
func (r *Registry) OpenCountMin(name string, spec Spec) (*CountMinHandle, error) {
	sk := r.getCountMin(name)
	if err := r.applySpec("countmin", name, sk, spec); err != nil {
		return nil, err
	}
	return &CountMinHandle{r: r, family: "countmin", name: name, sk: sk}, nil
}

// specTarget is the family-agnostic slice of a sharded sketch applySpec
// drives: the autoscale resize target plus the view and window switches.
type specTarget interface {
	autoscale.Target
	EnableView(ViewConfig) error
	DisableView() bool
	EnableWindow(WindowConfig) error
	DisableWindow() bool
	WindowSettings() (WindowConfig, bool)
}

// applySpec applies one Spec to one sketch. Resize and view re-arming run
// outside the registry lock (both serialise on the sketch's own resize
// lock); only the lifecycle record takes r.mu, briefly.
func (r *Registry) applySpec(family, name string, sk specTarget, spec Spec) error {
	if spec.Shards < 0 {
		return fmt.Errorf("%w: negative Spec.Shards", ErrConfig)
	}
	if spec.IdleTTL < 0 {
		return fmt.Errorf("%w: negative Spec.IdleTTL", ErrConfig)
	}
	if spec.Shards > 0 && sk.Shards() != spec.Shards {
		if err := sk.Resize(spec.Shards); err != nil {
			return err
		}
	}
	if spec.View != nil {
		sk.DisableView()
		if err := sk.EnableView(*spec.View); err != nil {
			return err
		}
	}
	if spec.Window != nil {
		want, err := spec.Window.Normalise()
		if err != nil {
			return err
		}
		// Equal declaration → no-op, so routinely reopening a windowed
		// sketch never discards its ring of closed intervals; only a changed
		// config re-arms (collapse into the cumulative plane, fresh ring).
		if cur, ok := sk.WindowSettings(); !ok || !cur.Same(want) {
			sk.DisableWindow()
			if err := sk.EnableWindow(*spec.Window); err != nil {
				return err
			}
		}
	}
	if spec.Autoscale != nil {
		if err := r.attachController(sk, *spec.Autoscale); err != nil {
			return err
		}
	}
	if spec.IdleTTL != 0 || spec.Pinned {
		r.mu.Lock()
		if !r.closed {
			r.lifecycles[family+"/"+name] = lifecycleSpec{spec.IdleTTL, spec.Pinned}
		}
		r.mu.Unlock()
	}
	return nil
}

// Family returns the handle's family string ("theta", "hll", "quantiles",
// "countmin") — the discriminator Registry.Info/Drop and the wire protocol
// use.
func (h *Handle[T, A, S]) Family() string { return h.family }

// Name returns the sketch's registered name.
func (h *Handle[T, A, S]) Name() string { return h.name }

// Sketch returns the concrete sharded sketch for family-specific calls —
// Theta/HLL Estimate, Quantiles Quantile/Rank/N, CountMin per-key Estimate,
// the UpdateString variants — all statically dispatched.
func (h *Handle[T, A, S]) Sketch() S { return h.sk }

// Update processes one item on writer lane lane. Lane l must be driven by
// at most one goroutine at a time — the core framework's lane discipline.
func (h *Handle[T, A, S]) Update(lane int, item T) { h.sk.Update(lane, item) }

// UpdateBatch processes a batch of items on writer lane lane, partitioned
// to the owning shards in one pass; steady-state it allocates nothing.
func (h *Handle[T, A, S]) UpdateBatch(lane int, items []T) { h.sk.UpdateBatch(lane, items) }

// QueryInto resets the caller-owned accumulator and folds every shard
// snapshot into it — the zero-allocation merged query plane. The result
// reflects all but at most Relaxation() of the updates that completed
// before the call.
func (h *Handle[T, A, S]) QueryInto(acc A) { h.sk.QueryInto(acc) }

// MergeInto folds every shard snapshot into acc without resetting it —
// cross-sketch aggregation over a shared accumulator.
func (h *Handle[T, A, S]) MergeInto(acc A) { h.sk.MergeInto(acc) }

// NewAccumulator builds a fresh family-dimensioned merge accumulator for
// QueryInto/MergeInto. Reuse one per reader goroutine to stay
// allocation-free.
func (h *Handle[T, A, S]) NewAccumulator() A { return h.sk.NewAccumulator() }

// Resize live-reshards the sketch to the given S; writers and queriers
// stay active throughout (transitional staleness bound S_old·r + S_new·r).
func (h *Handle[T, A, S]) Resize(shards int) error { return h.sk.Resize(shards) }

// Shards returns the current shard count S.
func (h *Handle[T, A, S]) Shards() int { return h.sk.Shards() }

// Relaxation returns the merged-query staleness bound S·r (transiently
// S_old·r + S_new·r while a resize drains).
func (h *Handle[T, A, S]) Relaxation() int { return h.sk.Relaxation() }

// ShardRelaxation returns the single-shard bound r = 2·N·b governing
// per-key queries.
func (h *Handle[T, A, S]) ShardRelaxation() int { return h.sk.ShardRelaxation() }

// Eager reports whether merged queries currently reflect every completed
// update (every shard still in its exact eager phase).
func (h *Handle[T, A, S]) Eager() bool { return h.sk.Eager() }

// Pressure returns the sketch's cumulative ingest-pressure counters,
// wait-free and monotonic across resizes.
func (h *Handle[T, A, S]) Pressure() PressureSample { return h.sk.Pressure() }

// SizeBytes estimates the sketch's resident heap footprint — the figure
// the memory-budget accountant sums (see shard.Sharded.SizeBytes).
func (h *Handle[T, A, S]) SizeBytes() int64 { return h.sk.SizeBytes() }

// EnableView materializes the sketch's merged view under cfg; merged
// queries then fold one published accumulator — O(1) in S — at staleness
// S·r plus one refresh interval.
func (h *Handle[T, A, S]) EnableView(cfg ViewConfig) error { return h.sk.EnableView(cfg) }

// DisableView stops the view refresher, reporting whether one was running;
// merged queries fold live shard snapshots again.
func (h *Handle[T, A, S]) DisableView() bool { return h.sk.DisableView() }

// ViewEnabled reports whether a materialized view is serving merged
// queries.
func (h *Handle[T, A, S]) ViewEnabled() bool { return h.sk.ViewEnabled() }

// ViewLag returns the age of the view's latest published refresh; zero
// when no view is enabled.
func (h *Handle[T, A, S]) ViewLag() time.Duration { return h.sk.ViewLag() }

// EnableWindow declares a sliding window under cfg: windowed queries then
// cover the live rotation interval plus the last cfg.Slots closed intervals,
// while the cumulative plane keeps serving the whole stream. A windowed
// query reflects all but at most Relaxation() of the window's updates, plus
// whatever the live interval has accumulated beyond one rotation interval.
func (h *Handle[T, A, S]) EnableWindow(cfg WindowConfig) error { return h.sk.EnableWindow(cfg) }

// DisableWindow stops the window's rotator and collapses its closed slots
// into the cumulative plane (no counted update is lost), reporting whether a
// window was enabled.
func (h *Handle[T, A, S]) DisableWindow() bool { return h.sk.DisableWindow() }

// WindowEnabled reports whether a sliding window is declared on this sketch.
func (h *Handle[T, A, S]) WindowEnabled() bool { return h.sk.WindowEnabled() }

// WindowStats returns a wait-free sample of the window plane — shape,
// rotation count, live-interval age and rotation lag — and whether a window
// is enabled.
func (h *Handle[T, A, S]) WindowStats() (WindowInfo, bool) { return h.sk.WindowStats() }

// WindowQueryInto resets the caller-owned accumulator and folds the windowed
// state — the closed-slot suffix-merge plus the live shard snapshots — into
// it: the zero-allocation windowed query plane, O(1) in the closed-slot
// count. Returns false (leaving acc reset) when no window is enabled.
func (h *Handle[T, A, S]) WindowQueryInto(acc A) bool { return h.sk.WindowQueryInto(acc) }

// WindowMergeInto folds the windowed state into acc without resetting it —
// cross-sketch windowed aggregation. Returns false (acc untouched) when no
// window is enabled.
func (h *Handle[T, A, S]) WindowMergeInto(acc A) bool { return h.sk.WindowMergeInto(acc) }

// RotateNow forces one window rotation immediately, independent of the
// rotation clock — deterministic interval boundaries for tests and batch
// pipelines. Returns false when no window is enabled.
func (h *Handle[T, A, S]) RotateNow() bool { return h.sk.RotateNow() }

// Autoscale attaches an autoscaling controller under p with replace
// semantics — any controller already driving this sketch is stopped and
// swapped, never stacked (the idempotent per-sketch form of
// Registry.ReplaceAutoscale).
func (h *Handle[T, A, S]) Autoscale(p AutoscalePolicy) error {
	return h.r.attachController(h.sk, p)
}

// StopAutoscale stops and detaches every controller driving this sketch,
// reporting how many were stopped.
func (h *Handle[T, A, S]) StopAutoscale() int {
	return h.r.stopControllersFor(h.sk)
}

// Info returns the sketch's live metadata (geometry, staleness bounds,
// pressure counters, resident size, lifecycle), or ok=false after Drop.
func (h *Handle[T, A, S]) Info() (SketchInfo, bool) {
	return h.r.Info(h.family, h.name)
}

// AutoscaleStats returns the live counters of the controller driving this
// sketch, or ok=false when none is attached.
func (h *Handle[T, A, S]) AutoscaleStats() (autoscale.Stats, bool) {
	return h.r.AutoscaleStats(h.family, h.name)
}

// Drop closes and removes the sketch from the registry, reporting whether
// it still existed — see Registry.Drop for the retained-handle contract.
func (h *Handle[T, A, S]) Drop() bool {
	return h.r.Drop(h.family, h.name)
}

// stopControllersFor stops and detaches every controller whose target is
// the given sketch, returning how many were stopped — Handle.StopAutoscale
// without the name-spanning cross-family semantics of StopAutoscale.
func (r *Registry) stopControllersFor(tgt any) int {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		panic("fastsketches: Registry used after Close")
	}
	var stop []*autoscale.Controller
	kept := r.controllers[:0]
	for _, rc := range r.controllers {
		if any(rc.target) == tgt {
			stop = append(stop, rc.ctl)
		} else {
			kept = append(kept, rc)
		}
	}
	r.controllers = kept
	r.mu.Unlock()
	for _, ctl := range stop {
		ctl.Stop()
	}
	return len(stop)
}
