package client_test

// Connection-failure tests: a kill-switch TCP proxy sits between the client
// and a healthy server, so tests can sever every live connection at a
// chosen moment — mid-pipeline, between Add and Flush — while redials (which
// go through the proxy again) land on fresh upstream connections. These pin
// the client's failure contract:
//
//   - a Flush that dies on transport RETAINS its items and succeeds when
//     retried over a redialed connection (no silent loss);
//   - a deterministic server rejection DROPS the items (no infinite retry);
//   - pooled in-flight call handles complete exactly once under connection
//     churn: a dropped handle would deadlock its round trip (test timeout),
//     a double-completed one would cross-talk pooled calls (caught by -race
//     and by the unmatched-response guard).

import (
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fastsketches"
	"fastsketches/client"
)

// killProxy forwards TCP connections to upstream and can sever every live
// proxied connection on demand. New connections accepted after killAll are
// forwarded normally, so a client redial self-heals through the proxy.
type killProxy struct {
	ln       net.Listener
	upstream string

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	// blackhole, while set, severs newly accepted connections immediately:
	// redials "succeed" at the TCP level but die on first use, keeping the
	// transport down across the client's self-healing attempts.
	blackhole atomic.Bool
}

func newKillProxy(t *testing.T, upstream string) *killProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &killProxy{ln: ln, upstream: upstream, conns: make(map[net.Conn]struct{})}
	go p.acceptLoop()
	t.Cleanup(p.close)
	return p
}

func (p *killProxy) addr() string { return p.ln.Addr().String() }

func (p *killProxy) acceptLoop() {
	for {
		down, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.blackhole.Load() {
			down.Close()
			continue
		}
		up, err := net.DialTimeout("tcp", p.upstream, 5*time.Second)
		if err != nil {
			down.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			down.Close()
			up.Close()
			return
		}
		p.conns[down] = struct{}{}
		p.conns[up] = struct{}{}
		p.mu.Unlock()
		go p.pipe(down, up)
		go p.pipe(up, down)
	}
}

func (p *killProxy) pipe(dst, src net.Conn) {
	io.Copy(dst, src)
	dst.Close()
	src.Close()
	p.mu.Lock()
	delete(p.conns, dst)
	delete(p.conns, src)
	p.mu.Unlock()
}

// killAll severs every currently proxied connection, both directions.
// In-flight frames die with them; the upstream server stays healthy.
func (p *killProxy) killAll() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	clear(p.conns)
	p.mu.Unlock()
}

func (p *killProxy) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.killAll()
}

// TestBatchRetainsItemsAcrossTransportFailure pins the Flush failure
// contract end to end: a batch whose connection died before the frame could
// be delivered keeps its items, reports the transport error, and a retried
// Flush lands every item on the server exactly once.
func TestBatchRetainsItemsAcrossTransportFailure(t *testing.T) {
	addr, _ := startServer(t, fastsketches.RegistryConfig{Shards: 1, Writers: 1})
	p := newKillProxy(t, addr)
	cl, err := client.Dial(p.addr(), client.Options{Conns: 1, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Create(client.CountMin, "retained"); err != nil {
		t.Fatal(err)
	}
	b := cl.NewBatch(client.CountMin, "retained")
	const n = 50 // below BatchSize: nothing auto-flushes before the kill
	for i := 0; i < n; i++ {
		if err := b.Add(uint64(i % 4)); err != nil {
			t.Fatal(err)
		}
	}

	// Sever the pooled connection before Flush: the frame can never reach
	// the server, so the failed Flush must retain all n items.
	p.killAll()
	ferr := b.Flush()
	if ferr == nil {
		// The kill can race the OS buffers such that the write "succeeds"
		// into a dead socket and the failure surfaces on the response read;
		// either way a nil error here means the ack arrived, which is
		// impossible across a severed proxy.
		t.Fatal("Flush succeeded across a severed connection")
	}
	if !strings.Contains(ferr.Error(), "retained") {
		t.Fatalf("transport-failed Flush did not report retention: %v", ferr)
	}
	if got := b.Len(); got != n {
		t.Fatalf("batch holds %d items after transport failure, want %d retained", got, n)
	}

	// Retry: the pool redials through the proxy onto the healthy server.
	// One retry may still fail if the dead conn is detected lazily.
	var retryErr error
	for attempt := 0; attempt < 3; attempt++ {
		if retryErr = b.Flush(); retryErr == nil {
			break
		}
	}
	if retryErr != nil {
		t.Fatalf("retried Flush never succeeded: %v", retryErr)
	}
	if b.Len() != 0 {
		t.Fatalf("batch holds %d items after successful retry", b.Len())
	}
	// Exactly-once for this sequence: the first frame died in the proxy, so
	// the retry is the only delivery. Single shard + acked batch means the
	// fold is allowed to lag by at most r; drain via the registry close in
	// cleanup is not needed since CountMinN reads acked state.
	inf, err := cl.Info(client.CountMin, "retained")
	if err != nil {
		t.Fatal(err)
	}
	total, err := cl.CountMinN("retained")
	if err != nil {
		t.Fatal(err)
	}
	if int(total) > n || int(total) < n-min(n, int(inf.Relaxation)) {
		t.Fatalf("server total %d outside [%d - S·r, %d] (S·r=%d): items lost or duplicated",
			total, n, n, inf.Relaxation)
	}
}

// TestBatchDropsOnDeterministicRejection pins the other half of the
// contract: a rejection that retrying can never clear empties the buffer
// and says so.
func TestBatchDropsOnDeterministicRejection(t *testing.T) {
	addr, _ := startServer(t, fastsketches.RegistryConfig{})
	cl, err := client.Dial(addr, client.Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Invalid name: rejected client-side before any frame is built.
	b := cl.NewBatch(client.Theta, "")
	b.Add(1)
	b.Add(2)
	if err := b.Flush(); err == nil || !strings.Contains(err.Error(), "dropped") {
		t.Fatalf("invalid-name Flush = %v, want dropped error", err)
	}
	if b.Len() != 0 {
		t.Fatalf("batch holds %d items after deterministic rejection, want 0", b.Len())
	}

	// Closed client: deterministic, drops.
	b2 := cl.NewBatch(client.Theta, "ok")
	b2.Add(1)
	cl.Close()
	if err := b2.Flush(); err == nil || !errors.Is(err, client.ErrClosed) {
		t.Fatalf("Flush on closed client = %v, want ErrClosed", err)
	}
	if b2.Len() != 0 {
		t.Fatalf("batch holds %d items after close, want 0", b2.Len())
	}
}

// TestBatchResetDiscards pins Reset: retained items can be explicitly
// abandoned.
func TestBatchResetDiscards(t *testing.T) {
	addr, _ := startServer(t, fastsketches.RegistryConfig{})
	cl, err := client.Dial(addr, client.Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	b := cl.NewBatch(client.HLL, "reset")
	for i := 0; i < 10; i++ {
		b.Add(uint64(i))
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len = %d after Reset", b.Len())
	}
	if err := b.Flush(); err != nil {
		t.Fatalf("Flush of reset batch: %v", err)
	}
}

// TestBatchChunksOversizedRetainedBuffer: a caller that kept Adding past a
// transport failure accumulates more than one batch frame of items; the
// recovering Flush must ship them in wire-legal chunks rather than one
// oversized frame the server would reject.
func TestBatchChunksOversizedRetainedBuffer(t *testing.T) {
	addr, _ := startServer(t, fastsketches.RegistryConfig{Shards: 1, Writers: 1})
	p := newKillProxy(t, addr)
	cl, err := client.Dial(p.addr(), client.Options{Conns: 1, BatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Create(client.CountMin, "chunked"); err != nil {
		t.Fatal(err)
	}

	b := cl.NewBatch(client.CountMin, "chunked")
	p.blackhole.Store(true)
	p.killAll()
	// Keep adding through the failures: every auto-flush fails on transport
	// (redials die instantly while the proxy blackholes) and retains, so the
	// buffer grows far past BatchSize.
	const n = 150
	sawFailure := false
	for i := 0; i < n; i++ {
		if err := b.Add(1); err != nil {
			sawFailure = true
		}
	}
	p.blackhole.Store(false)
	if !sawFailure {
		t.Fatal("no Add ever surfaced the transport failure")
	}
	if b.Len() != n {
		t.Fatalf("buffer holds %d items, want all %d retained", b.Len(), n)
	}
	var ferr error
	for attempt := 0; attempt < 3; attempt++ {
		if ferr = b.Flush(); ferr == nil {
			break
		}
	}
	if ferr != nil {
		t.Fatalf("recovering Flush failed: %v", ferr)
	}
	if b.Len() != 0 {
		t.Fatalf("buffer holds %d items after recovery", b.Len())
	}
	inf, err := cl.Info(client.CountMin, "chunked")
	if err != nil {
		t.Fatal(err)
	}
	total, err := cl.CountMinN("chunked")
	if err != nil {
		t.Fatal(err)
	}
	if int(total) > n || int(total) < n-min(n, int(inf.Relaxation)) {
		t.Fatalf("server total %d outside [%d - S·r, %d]: chunked recovery lost or duplicated items",
			total, n, n)
	}
}

// TestPipelinedCallsCompleteExactlyOnceUnderChurn hammers a small pool with
// pipelined requests while the proxy keeps severing every connection. Every
// in-flight pooled call handle must complete exactly once: a dropped handle
// deadlocks its goroutine (test timeout), a double-completed handle is
// reused concurrently by two round trips (a data race, caught under -race,
// or an unmatched-response failure). Acked batch items must survive on the
// server regardless of how many transport errors surrounded them.
func TestPipelinedCallsCompleteExactlyOnceUnderChurn(t *testing.T) {
	addr, _ := startServer(t, fastsketches.RegistryConfig{Shards: 2, Writers: 2})
	p := newKillProxy(t, addr)
	cl, err := client.Dial(p.addr(), client.Options{Conns: 2, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var acked atomic.Uint64
	var stop atomic.Bool
	var wg sync.WaitGroup
	const goroutines = 6
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			b := cl.NewBatch(client.CountMin, "churn")
			for i := 0; !stop.Load(); i++ {
				before := b.Len()
				if err := b.Add(uint64(g)); err != nil {
					// Transport failures retain; deterministic drops would
					// be a bug here (the name is valid, server healthy).
					if strings.Contains(err.Error(), "dropped") {
						t.Errorf("goroutine %d: batch dropped under pure transport churn: %v", g, err)
						return
					}
					continue
				}
				if after := b.Len(); after <= before {
					// A flush happened and fully succeeded: everything
					// buffered plus this item was acked.
					acked.Add(uint64(before + 1 - after))
				}
				if i%31 == 0 {
					cl.CountMinN("churn") // pipelined query mixed in; errors fine
				}
			}
			// Final drain so the acked counter reflects delivered items.
			for attempt := 0; attempt < 20 && b.Len() > 0; attempt++ {
				n := b.Len()
				if err := b.Flush(); err == nil {
					acked.Add(uint64(n))
				} else if rem := b.Len(); rem < n {
					acked.Add(uint64(n - rem))
				}
			}
		}(g)
	}

	// Churn: sever everything every few milliseconds for a while, then let
	// the pool heal.
	for k := 0; k < 25; k++ {
		time.Sleep(4 * time.Millisecond)
		p.killAll()
	}
	time.Sleep(10 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	var total uint64
	for attempt := 0; attempt < 5; attempt++ {
		if total, err = cl.CountMinN("churn"); err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("final count query never recovered: %v", err)
	}
	// Acked items are never lost (allowing the merged-query staleness lag);
	// unacked retries mean the server may hold more, never fewer.
	inf, err := cl.Info(client.CountMin, "churn")
	if err != nil {
		t.Fatal(err)
	}
	floor := acked.Load()
	if relax := uint64(inf.Relaxation); floor > relax {
		floor -= relax
	} else {
		floor = 0
	}
	if total < floor {
		t.Fatalf("server holds %d items, %d were acked (floor %d with S·r=%d): acked items lost",
			total, acked.Load(), floor, inf.Relaxation)
	}
}
