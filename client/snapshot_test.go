package client_test

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"

	"fastsketches"
	"fastsketches/client"
	"fastsketches/internal/server"
)

// startServerFull is startServer plus the server handle, for tests that
// wire admin hooks (SetCheckpoint) onto the running server.
func startServerFull(t *testing.T, cfg fastsketches.RegistryConfig) (string, *fastsketches.Registry, *server.Server) {
	t.Helper()
	reg, err := fastsketches.NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(reg)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown()
		if err := <-done; !errors.Is(err, server.ErrServerClosed) {
			t.Errorf("Serve: %v", err)
		}
		reg.Close()
	})
	return ln.Addr().String(), reg, srv
}

func dial(t *testing.T, addr string) *client.Client {
	t.Helper()
	cl, err := client.Dial(addr, client.Options{Conns: 1, BatchSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func ingest(t *testing.T, cl *client.Client, fam client.Family, name string, lo, hi uint64) {
	t.Helper()
	b := cl.NewBatch(fam, name)
	for i := lo; i < hi; i++ {
		if err := b.Add(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
}

// quiesce resizes the sketch to synchronously drain writer buffers, so the
// served value is exact (no relaxation residue) before snapshots compare.
func quiesce(t *testing.T, cl *client.Client, fam client.Family, name string) {
	t.Helper()
	inf, err := cl.Info(fam, name)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Resize(fam, name, int(inf.Shards)+1); err != nil {
		t.Fatal(err)
	}
}

// TestClientSnapshotRestore round-trips a snapshot between two daemons: pull
// a blob from A, push it into B, and compare the exact post-quiesce answers.
func TestClientSnapshotRestore(t *testing.T) {
	addrA, _, _ := startServerFull(t, fastsketches.RegistryConfig{Shards: 2, Writers: 2})
	addrB, _, _ := startServerFull(t, fastsketches.RegistryConfig{Shards: 3, Writers: 1})
	a, b := dial(t, addrA), dial(t, addrB)

	const n = 4000
	ingest(t, a, client.HLL, "xfer", 0, n)
	quiesce(t, a, client.HLL, "xfer")
	want, err := a.HLLEstimate("xfer")
	if err != nil {
		t.Fatal(err)
	}

	snap, err := a.Snapshot(client.HLL, "xfer")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) == 0 {
		t.Fatal("empty snapshot blob")
	}

	// Restore creates the sketch on B; registers travel exactly, so the
	// estimate is bit-identical to A's.
	if err := b.Restore(client.HLL, "xfer", snap); err != nil {
		t.Fatal(err)
	}
	got, err := b.HLLEstimate("xfer")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("restored estimate %v, want %v", got, want)
	}

	// The restore folded contents only: B keeps its own shard count.
	inf, err := b.Info(client.HLL, "xfer")
	if err != nil {
		t.Fatal(err)
	}
	if inf.Shards != 3 {
		t.Fatalf("restored sketch has %d shards, want B's configured 3", inf.Shards)
	}

	// Restoring the same blob twice is a union no-op for HLL.
	if err := b.Restore(client.HLL, "xfer", snap); err != nil {
		t.Fatal(err)
	}
	if got, _ := b.HLLEstimate("xfer"); got != want {
		t.Fatalf("double restore changed estimate to %v, want %v", got, want)
	}
}

// TestClientSnapshotErrors pins the error surface of the snapshot ops.
func TestClientSnapshotErrors(t *testing.T) {
	addr, _, _ := startServerFull(t, fastsketches.RegistryConfig{})
	cl := dial(t, addr)

	var srvErr *client.Error

	// Snapshot never creates: an absent name is an error, not an implicit
	// empty sketch (typo protection for operators).
	if _, err := cl.Snapshot(client.Theta, "no-such"); !errors.As(err, &srvErr) {
		t.Fatalf("Snapshot absent: %v, want *client.Error", err)
	}

	// A snapshot blob restores only into its recorded family.
	ingest(t, cl, client.Theta, "fam", 0, 100)
	snap, err := cl.Snapshot(client.Theta, "fam")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Restore(client.HLL, "fam", snap); !errors.As(err, &srvErr) {
		t.Fatalf("cross-family restore: %v, want *client.Error", err)
	}

	// Garbage blobs are rejected server-side with the codec's error.
	if err := cl.Restore(client.Theta, "fam", []byte("not a snapshot")); !errors.As(err, &srvErr) {
		t.Fatalf("garbage restore: %v, want *client.Error", err)
	}

	// Checkpoint on a daemon with no checkpoint path configured.
	if err := cl.Checkpoint(); !errors.As(err, &srvErr) {
		t.Fatalf("unconfigured Checkpoint: %v, want *client.Error", err)
	}

	// MergeRemote against an unreachable peer reports the dial failure.
	if err := cl.MergeRemote(client.Theta, "fam", "127.0.0.1:1"); !errors.As(err, &srvErr) {
		t.Fatalf("MergeRemote unreachable peer: %v, want *client.Error", err)
	}

	// The connection survives every error above.
	if err := cl.Ping(); err != nil {
		t.Fatalf("connection unusable after snapshot errors: %v", err)
	}
}

// TestClientCheckpointConfigured wires a registry checkpoint file onto the
// server and verifies the client-triggered checkpoint lands on disk and
// restores.
func TestClientCheckpointConfigured(t *testing.T) {
	addr, reg, srv := startServerFull(t, fastsketches.RegistryConfig{Shards: 2, Writers: 1})
	path := filepath.Join(t.TempDir(), "ckpt.fsnp")
	srv.SetCheckpoint(func() error { return reg.CheckpointFile(path) })
	cl := dial(t, addr)

	const n = 3000
	ingest(t, cl, client.CountMin, "hits", 0, n)
	quiesce(t, cl, client.CountMin, "hits")
	if err := cl.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checkpoint file missing after Checkpoint: %v", err)
	}

	fresh, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{Shards: 1, Writers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if err := fresh.RestoreFile(path); err != nil {
		t.Fatal(err)
	}
	freshH, err := fresh.OpenCountMin("hits", fastsketches.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if got := freshH.Sketch().N(); got != n {
		t.Fatalf("restored registry CountMin N = %d, want %d", got, n)
	}
}

// TestClientMergeRemote has daemon B pull A's sketch and fold it into its
// own: the union of two disjoint key ranges must count every key once.
func TestClientMergeRemote(t *testing.T) {
	addrA, _, _ := startServerFull(t, fastsketches.RegistryConfig{Shards: 2, Writers: 1})
	addrB, _, _ := startServerFull(t, fastsketches.RegistryConfig{Shards: 2, Writers: 1})
	a, b := dial(t, addrA), dial(t, addrB)

	const half = 2500
	ingest(t, a, client.CountMin, "m", 0, half)
	ingest(t, b, client.CountMin, "m", half, 2*half)
	quiesce(t, a, client.CountMin, "m")
	quiesce(t, b, client.CountMin, "m")

	if err := b.MergeRemote(client.CountMin, "m", addrA); err != nil {
		t.Fatal(err)
	}
	if got, err := b.CountMinN("m"); err != nil || got != 2*half {
		t.Fatalf("merged N = %d (err %v), want %d", got, err, 2*half)
	}
	// A is read-only in the exchange.
	if got, err := a.CountMinN("m"); err != nil || got != half {
		t.Fatalf("peer N = %d (err %v), want untouched %d", got, err, half)
	}
}
