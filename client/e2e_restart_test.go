package client_test

import (
	"bufio"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"testing"
	"time"

	"fastsketches/client"
)

var servingRe = regexp.MustCompile(`serving on (\S+) `)

// buildSketchd returns the sketchd binary to crash-test: $SKETCHD_BIN if the
// CI e2e job already built one, otherwise a fresh `go build` into the test's
// temp dir.
func buildSketchd(t *testing.T) string {
	t.Helper()
	if bin := os.Getenv("SKETCHD_BIN"); bin != "" {
		return bin
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("no go toolchain and no SKETCHD_BIN; skipping restart harness")
	}
	bin := filepath.Join(t.TempDir(), "sketchd")
	cmd := exec.Command("go", "build", "-o", bin, "fastsketches/cmd/sketchd")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build sketchd: %v\n%s", err, out)
	}
	return bin
}

// startSketchd boots the real binary on an ephemeral port with periodic
// checkpointing and warm-start wired to path, and parses the served address
// from the daemon's own log line. The stderr drain keeps running for the
// process's lifetime so the daemon never blocks on a full pipe.
func startSketchd(t *testing.T, bin, path string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-shards", "2", "-writers", "2",
		"-checkpoint", path, "-checkpoint-every", "150ms",
		"-restore", path,
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrC := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := servingRe.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrC <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrC:
		return cmd, addr
	case <-time.After(15 * time.Second):
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		t.Fatal("sketchd never reported a serving address")
		return nil, ""
	}
}

// TestE2ERestart is the crash/restart harness: it SIGKILLs a real sketchd
// binary mid-ingest and asserts the documented recovery bound on the state a
// warm-started replacement serves.
//
// The bound: a restored daemon holds at least the last durable checkpoint
// (here pinned exactly at N1 by an explicit quiesce + client Checkpoint) and
// at most everything the client ever attempted to send — a checkpoint is a
// fold of completed updates, so recovery can neither lose acknowledged
// pre-checkpoint state nor invent weight. Updates after the last periodic
// checkpoint (≤ checkpoint interval + S·r relaxation worth) are the
// documented loss window; SIGKILL mid-write must never corrupt the file
// (atomic temp + rename), which restoring exercises.
func TestE2ERestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills real daemons")
	}
	bin := buildSketchd(t)
	ckpt := filepath.Join(t.TempDir(), "sketchd.fsnp")

	// ---- Boot 1: cold start (restore of a missing file is not an error).
	daemon, addr := startSketchd(t, bin, ckpt)
	cl, err := client.Dial(addr, client.Options{Conns: 2, BatchSize: 512})
	if err != nil {
		t.Fatal(err)
	}

	// Wave 1: ingest, quiesce (exact drain), checkpoint durably. The file
	// now holds exactly n1 for the Count-Min total and all wave-1 HLL keys.
	const n1 = 20_000
	b := cl.NewBatch(client.CountMin, "r.cm")
	bh := cl.NewBatch(client.HLL, "r.hll")
	for i := 0; i < n1; i++ {
		if err := b.Add(uint64(i % 509)); err != nil {
			t.Fatal(err)
		}
		if err := bh.Add(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := bh.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []client.Family{client.CountMin, client.HLL} {
		name := map[client.Family]string{client.CountMin: "r.cm", client.HLL: "r.hll"}[fam]
		if err := cl.Resize(fam, name, 3); err != nil {
			t.Fatal(err)
		}
	}
	hllBefore, err := cl.HLLEstimate("r.hll")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Wave 2: keep ingesting in small acked batches, then SIGKILL the
	// daemon mid-stream — some batches acked, likely one in flight, the
	// periodic checkpointer possibly mid-write. attempted2 upper-bounds
	// what the dead daemon could ever have absorbed.
	attempted2 := 0
	killAfter := time.Now().Add(400 * time.Millisecond) // spans ≥2 periodic checkpoints
	for time.Now().Before(killAfter) {
		wb := cl.NewBatch(client.CountMin, "r.cm")
		for i := 0; i < 200; i++ {
			attempted2++
			if err := wb.Add(uint64(attempted2 % 509)); err != nil {
				break // daemon may already be gone
			}
		}
		if err := wb.Flush(); err != nil {
			break
		}
	}
	if err := daemon.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = daemon.Wait()
	cl.Close()

	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint file survived the crash: %v", err)
	}

	// ---- Boot 2: warm start from the crash-surviving file.
	daemon2, addr2 := startSketchd(t, bin, ckpt)
	defer func() {
		_ = daemon2.Process.Kill()
		_ = daemon2.Wait()
	}()
	cl2, err := client.Dial(addr2, client.Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()

	// Quiesce so the served totals are exact, then assert the bound:
	// floor (wave 1, durably checkpointed) ≤ recovered ≤ everything sent.
	if err := cl2.Resize(client.CountMin, "r.cm", 4); err != nil {
		t.Fatal(err)
	}
	n, err := cl2.CountMinN("r.cm")
	if err != nil {
		t.Fatal(err)
	}
	if n < n1 {
		t.Errorf("recovered Count-Min N = %d below the durable floor %d: checkpointed state lost", n, n1)
	}
	if max := uint64(n1 + attempted2); n > max {
		t.Errorf("recovered Count-Min N = %d above everything ever sent (%d): recovery invented weight", n, max)
	}

	// The HLL sketch was untouched by wave 2, quiesced before the explicit
	// checkpoint, and HLL registers travel exactly — so the estimate the
	// restored daemon serves is bit-identical to the pre-crash one.
	hllAfter, err := cl2.HLLEstimate("r.hll")
	if err != nil {
		t.Fatal(err)
	}
	if hllAfter != hllBefore {
		t.Errorf("restored HLL estimate %v != pre-crash %v", hllAfter, hllBefore)
	}

	// Restored state must keep absorbing writes.
	wb := cl2.NewBatch(client.CountMin, "r.cm")
	for i := 0; i < 1000; i++ {
		if err := wb.Add(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := wb.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cl2.Resize(client.CountMin, "r.cm", 2); err != nil {
		t.Fatal(err)
	}
	n2, err := cl2.CountMinN("r.cm")
	if err != nil {
		t.Fatal(err)
	}
	if want := n + 1000; n2 != want {
		t.Errorf("post-restore ingest: N = %d, want exactly %d", n2, want)
	}
}
