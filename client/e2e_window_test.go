package client_test

import (
	"errors"
	"testing"
	"time"

	"fastsketches"
	"fastsketches/client"
)

// TestE2EWindows drives the windowing story over the wire end to end:
// windowed queries on a window-less sketch fail with a typed server error on
// a healthy connection, EnableWindow spans every family registered under the
// name (stripping decay from the families that cannot honour it), Info
// echoes the declared geometry and rotation liveness, windowed and decayed
// queries serve exact answers across rotations and an expulsion, and
// DisableWindow restores the window-less behaviour without touching the
// cumulative plane.
//
// The server is always in-process: the test reaches through the registry for
// deterministic RotateNow calls, standing in for the wall-clock rotator.
func TestE2EWindows(t *testing.T) {
	addr, reg := startServer(t, fastsketches.RegistryConfig{Shards: 2, Writers: 2})
	cl, err := client.Dial(addr, client.Options{Conns: 2, BatchSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const name = "e2e.win"
	for _, fam := range []client.Family{client.Theta, client.HLL, client.CountMin, client.Quantiles} {
		if err := cl.Create(fam, name); err != nil {
			t.Fatal(err)
		}
	}
	// The registry-side handle drives rotations; it aliases the same sketch
	// the server serves.
	cm, err := reg.OpenCountMin(name, fastsketches.Spec{})
	if err != nil {
		t.Fatal(err)
	}

	// Windowed queries without a declared window are typed errors, not
	// hangups.
	if _, err := cl.WindowCountMinN(name); err == nil {
		t.Fatal("windowed query without a window did not error")
	} else {
		var se *client.Error
		if !errors.As(err, &se) {
			t.Fatalf("windowed query error %v is not a server-typed *client.Error", err)
		}
	}
	if err := cl.Ping(); err != nil {
		t.Fatalf("connection unhealthy after typed error: %v", err)
	}

	// Declare a two-slot decayed window across the whole name. Decay sticks
	// on Count-Min and is stripped from the other three families.
	if err := cl.EnableWindow(name, time.Hour, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []client.Family{client.Theta, client.HLL, client.CountMin, client.Quantiles} {
		inf, err := cl.Info(fam, name)
		if err != nil {
			t.Fatal(err)
		}
		if !inf.WindowEnabled || inf.WindowSlots != 2 ||
			inf.WindowIntervalNs != uint64(time.Hour) || inf.WindowRotations != 0 {
			t.Fatalf("%s Info after EnableWindow = %+v, want a fresh 2-slot hour window", fam, inf)
		}
	}

	// Every Count-Min update hits the single key 7, so per-key estimates are
	// exact sums and the windowed arithmetic below is deterministic.
	next := 3 // alternate drain-resize targets: same-size resizes no-op
	ingest := func(n int) {
		t.Helper()
		b := cl.NewBatch(client.CountMin, name)
		for i := 0; i < n; i++ {
			if err := b.Add(7); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.Flush(); err != nil {
			t.Fatal(err)
		}
		// Quiesce: an exact drain folds every acked update into the live
		// interval's carry before the rotation closes it.
		if err := cl.Resize(client.CountMin, name, next); err != nil {
			t.Fatal(err)
		}
		next = 5 - next
	}

	// Theta rides along to prove windowed queries span families: 1000
	// distinct keys stay inside the eager exact regime.
	bt := cl.NewBatch(client.Theta, name)
	for i := 0; i < 1000; i++ {
		if err := bt.Add(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := bt.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Resize(client.Theta, name, 3); err != nil {
		t.Fatal(err)
	}
	if est, err := cl.ThetaWindowEstimate(name); err != nil || est != 1000 {
		t.Fatalf("ThetaWindowEstimate = (%v, %v), want exactly 1000 in the eager regime", est, err)
	}

	// Three closed intervals of 100, 40 and 10 through a 2-slot ring with
	// decay 0.5:
	//   rotate 1: ring [100],     decay plane 100
	//   rotate 2: ring [100, 40], decay plane 0.5·100 + 40 = 90
	//   rotate 3: ring [40, 10],  decay plane 0.5·90 + 10 = 55   (100 expelled)
	for _, n := range []int{100, 40, 10} {
		ingest(n)
		if !cm.RotateNow() {
			t.Fatal("RotateNow returned false on a declared window")
		}
	}
	if got, err := cl.WindowCount(name, 7); err != nil || got != 50 {
		t.Fatalf("WindowCount after expulsion = (%d, %v), want exactly 50", got, err)
	}
	if got, err := cl.WindowCountMinN(name); err != nil || got != 50 {
		t.Fatalf("WindowCountMinN after expulsion = (%d, %v), want exactly 50", got, err)
	}
	if got, err := cl.DecayedCount(name, 7); err != nil || got != 55 {
		t.Fatalf("DecayedCount = (%d, %v), want exactly 55", got, err)
	}
	// The cumulative plane never forgets: the expelled interval still counts.
	if got, err := cl.Count(name, 7); err != nil || got != 150 {
		t.Fatalf("cumulative Count = (%d, %v), want all 150", got, err)
	}
	inf, err := cl.Info(client.CountMin, name)
	if err != nil {
		t.Fatal(err)
	}
	if !inf.WindowEnabled || inf.WindowRotations != 3 {
		t.Fatalf("Info after 3 rotations = %+v", inf)
	}

	// DisableWindow spans the name, windowed queries fail typed again, and
	// the cumulative plane is untouched.
	if err := cl.DisableWindow(name); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.WindowCountMinN(name); err == nil {
		t.Fatal("windowed query after DisableWindow did not error")
	}
	inf, err = cl.Info(client.CountMin, name)
	if err != nil {
		t.Fatal(err)
	}
	if inf.WindowEnabled {
		t.Fatalf("Info after DisableWindow = %+v, want window gone", inf)
	}
	if got, err := cl.Count(name, 7); err != nil || got != 150 {
		t.Fatalf("cumulative Count after DisableWindow = (%d, %v), want 150", got, err)
	}
	// A second DisableWindow finds nothing to collapse.
	if err := cl.DisableWindow(name); err == nil {
		t.Error("second DisableWindow did not error")
	}
}
