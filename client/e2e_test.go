package client_test

import (
	"errors"
	"fmt"
	"math"
	"os"
	"slices"
	"sync"
	"testing"
	"time"

	"fastsketches"
	"fastsketches/client"
)

// TestE2E is the end-to-end serving smoke CI's e2e job runs against a real
// sketchd binary (SKETCHD_ADDR set); without the variable it boots an
// in-process server so the same coverage rides every `go test ./...`.
//
// It drives the full serving story: batched ingest from N concurrent
// connections, pipelined merged queries, a live resize under write fire, a
// materialized-view enable/serve/disable cycle, admin enumeration and drop —
// and the acceptance core: after a quiesce
// (resize-drain, which folds every completed update exactly into legacy
// state), served query results must MATCH in-process QueryInto results on
// the same stream. HLL registers (max) and Count-Min counters (sums) are
// deterministic functions of the ingested key multiset, so a mirror
// registry with identical geometry replaying the same keys must agree
// bit-for-bit — as must a Θ sketch still in its exact eager regime. A
// sampled-regime Θ sketch's retained set depends on prune timing (and so
// on the concurrent interleaving), and quantiles compaction is randomised
// per interleaving: those agree within the families' error bounds.
func TestE2E(t *testing.T) {
	addr := os.Getenv("SKETCHD_ADDR")
	if addr == "" {
		addr, _ = startServer(t, fastsketches.RegistryConfig{Shards: 2, Writers: 2})
	}
	cl, err := client.Dial(addr, client.Options{Conns: 4, BatchSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}

	// Make reruns against a long-lived external server idempotent.
	names := map[client.Family]string{
		client.Theta:     "e2e.theta",
		client.HLL:       "e2e.hll",
		client.CountMin:  "e2e.cm",
		client.Quantiles: "e2e.q",
	}
	for fam, name := range names {
		_ = cl.Drop(fam, name)
	}
	_ = cl.Drop(client.CountMin, "e2e.fire")
	_ = cl.Drop(client.Theta, "e2e.theta.exact")
	_ = cl.Drop(client.CountMin, "e2e.mr")

	// Discover the served geometry and build the in-process mirror with
	// the same one (family accuracy parameters are the shared library
	// defaults on both sides; CI starts sketchd without overrides).
	if err := cl.Create(client.Theta, names[client.Theta]); err != nil {
		t.Fatal(err)
	}
	inf, err := cl.Info(client.Theta, names[client.Theta])
	if err != nil {
		t.Fatal(err)
	}
	mirror, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{
		Shards: inf.Shards, Writers: inf.Writers,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mirror.Close()

	// ---- Phase 1: batched ingest + pipelined queries + resize under fire.
	t.Run("resize-under-fire", func(t *testing.T) {
		const writers = 4
		const perWriter = 20_000
		var wg sync.WaitGroup
		errs := make(chan error, writers)
		fireDone := make(chan struct{})
		for g := 0; g < writers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				b := cl.NewBatch(client.CountMin, "e2e.fire")
				for i := 0; i < perWriter; i++ {
					if err := b.Add(uint64(g)<<32 | uint64(i)); err != nil {
						errs <- err
						return
					}
					if i%4999 == 0 { // pipelined queries riding the ingest
						if _, err := cl.CountMinN("e2e.fire"); err != nil {
							errs <- err
							return
						}
					}
				}
				errs <- b.Flush()
			}(g)
		}
		// Walk the shard count while the writers hammer.
		go func() {
			defer close(fireDone)
			for _, s := range []int{inf.Shards + 2, 1, inf.Shards} {
				if err := cl.Resize(client.CountMin, "e2e.fire", s); err != nil {
					t.Errorf("resize under fire: %v", err)
					return
				}
			}
		}()
		wg.Wait()
		<-fireDone
		for g := 0; g < writers; g++ {
			if err := <-errs; err != nil {
				t.Fatal(err)
			}
		}
		// Quiesce: one more resize drains everything into legacy; the total
		// weight is then exact and must cover every acked item.
		if err := cl.Resize(client.CountMin, "e2e.fire", inf.Shards+1); err != nil {
			t.Fatal(err)
		}
		n, err := cl.CountMinN("e2e.fire")
		if err != nil {
			t.Fatal(err)
		}
		if n != writers*perWriter {
			t.Fatalf("after quiesce N = %d, want exactly %d (acked batches lost or duplicated)",
				n, writers*perWriter)
		}
	})

	// ---- Phase 2: served results match in-process QueryInto on the same
	// stream.
	t.Run("consistency", func(t *testing.T) {
		const writers = 4
		const perWriter = 25_000
		const cmKeySpace = 1000
		var wg sync.WaitGroup
		errs := make(chan error, writers)
		for g := 0; g < writers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				bt := cl.NewBatch(client.Theta, names[client.Theta])
				bh := cl.NewBatch(client.HLL, names[client.HLL])
				bc := cl.NewBatch(client.CountMin, names[client.CountMin])
				bq := cl.NewBatch(client.Quantiles, names[client.Quantiles])
				for i := 0; i < perWriter; i++ {
					k := uint64(g)*perWriter + uint64(i)
					if err := errors.Join(
						bt.Add(k), bh.Add(k), bc.Add(k%cmKeySpace),
						bq.AddFloat(float64(k%4096)),
					); err != nil {
						errs <- err
						return
					}
				}
				errs <- errors.Join(bt.Flush(), bh.Flush(), bc.Flush(), bq.Flush())
			}(g)
		}
		wg.Wait()
		for g := 0; g < writers; g++ {
			if err := <-errs; err != nil {
				t.Fatal(err)
			}
		}

		// Mirror the identical stream in-process (order-independent for
		// Θ/HLL/Count-Min, so a single sequential lane suffices).
		mtH, _ := mirror.OpenTheta(names[client.Theta], fastsketches.Spec{})
		mhH, _ := mirror.OpenHLL(names[client.HLL], fastsketches.Spec{})
		mcH, _ := mirror.OpenCountMin(names[client.CountMin], fastsketches.Spec{})
		mqH, _ := mirror.OpenQuantiles(names[client.Quantiles], fastsketches.Spec{})
		mt, mh := mtH.Sketch(), mhH.Sketch()
		mc, mq := mcH.Sketch(), mqH.Sketch()
		for g := 0; g < writers; g++ {
			for i := 0; i < perWriter; i++ {
				k := uint64(g)*perWriter + uint64(i)
				mt.Update(0, k)
				mh.Update(0, k)
				mc.Update(0, k%cmKeySpace)
				mq.Update(0, float64(k%4096))
			}
		}

		// Quiesce both sides identically: a resize is an exact drain — all
		// completed updates fold into legacy state, new shards start empty —
		// so the merged state on both sides is the same deterministic
		// function of the key multiset and the epoch history.
		quiesceTo := inf.Shards + 1
		for fam, sk := range map[client.Family]interface{ Resize(int) error }{
			client.Theta:     mt,
			client.HLL:       mh,
			client.CountMin:  mc,
			client.Quantiles: mq,
		} {
			if err := cl.Resize(fam, names[fam], quiesceTo); err != nil {
				t.Fatal(err)
			}
			if err := sk.Resize(quiesceTo); err != nil {
				t.Fatal(err)
			}
		}

		// Θ, sampled regime (100k keys ≫ the eager window): the retained
		// sample depends on prune timing and thus on the interleaving, so
		// served and in-process agree within the estimator's accuracy
		// bound, both sides centred on the same truth.
		served, err := cl.ThetaEstimate(names[client.Theta])
		if err != nil {
			t.Fatal(err)
		}
		mtAcc := mt.NewAccumulator()
		mt.QueryInto(mtAcc)
		local := mtAcc.Estimate()
		truth := float64(writers * perWriter)
		if math.Abs(served/local-1) > 0.05 ||
			math.Abs(served/truth-1) > 0.05 || math.Abs(local/truth-1) > 0.05 {
			t.Errorf("theta: served %v vs in-process %v (truth %v) beyond the accuracy bound",
				served, local, truth)
		}

		// Θ, exact regime: a stream inside the eager window drains to a
		// state that IS order-independent, so served and in-process must
		// agree bit-for-bit.
		const exactKeys = 1000
		be := cl.NewBatch(client.Theta, "e2e.theta.exact")
		for i := 0; i < exactKeys; i++ {
			if err := be.Add(uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := be.Flush(); err != nil {
			t.Fatal(err)
		}
		meH, _ := mirror.OpenTheta("e2e.theta.exact", fastsketches.Spec{})
		me := meH.Sketch()
		for i := 0; i < exactKeys; i++ {
			me.Update(0, uint64(i))
		}
		if err := cl.Resize(client.Theta, "e2e.theta.exact", quiesceTo); err != nil {
			t.Fatal(err)
		}
		if err := me.Resize(quiesceTo); err != nil {
			t.Fatal(err)
		}
		servedExact, err := cl.ThetaEstimate("e2e.theta.exact")
		if err != nil {
			t.Fatal(err)
		}
		meAcc := me.NewAccumulator()
		me.QueryInto(meAcc)
		if localExact := meAcc.Estimate(); servedExact != localExact {
			t.Errorf("theta exact regime: served %v != in-process QueryInto %v", servedExact, localExact)
		} else if servedExact != exactKeys {
			t.Errorf("theta exact regime: estimate %v, want exactly %d", servedExact, exactKeys)
		}

		// HLL: bit-identical estimates.
		served, err = cl.HLLEstimate(names[client.HLL])
		if err != nil {
			t.Fatal(err)
		}
		mhAcc := mh.NewAccumulator()
		mh.QueryInto(mhAcc)
		local = mhAcc.Estimate()
		if served != local {
			t.Errorf("hll: served %v != in-process QueryInto %v", served, local)
		}

		// Count-Min: exact total weight and identical per-key estimates.
		n, err := cl.CountMinN(names[client.CountMin])
		if err != nil {
			t.Fatal(err)
		}
		acc := mc.NewAccumulator()
		mc.QueryInto(acc)
		if n != acc.N() || n != writers*perWriter {
			t.Errorf("countmin: served N %d, in-process %d, ingested %d", n, acc.N(), writers*perWriter)
		}
		for probe := uint64(0); probe < 20; probe++ {
			key := probe * 47 % cmKeySpace
			servedCnt, err := cl.Count(names[client.CountMin], key)
			if err != nil {
				t.Fatal(err)
			}
			if localCnt := mc.Estimate(key); servedCnt != localCnt {
				t.Errorf("countmin key %d: served %d != in-process %d", key, servedCnt, localCnt)
			}
		}

		// Quantiles: compaction randomisation depends on the concurrent
		// interleaving, so served and mirror ranks agree within a generous
		// multiple of the family's rank-error bound rather than exactly.
		qn, err := cl.QuantilesN(names[client.Quantiles])
		if err != nil {
			t.Fatal(err)
		}
		if qn != writers*perWriter {
			t.Errorf("quantiles: served N %d, want %d", qn, writers*perWriter)
		}
		qacc := mq.NewAccumulator()
		for _, phi := range []float64{0.1, 0.5, 0.9, 0.99} {
			v, err := cl.Quantile(names[client.Quantiles], phi)
			if err != nil {
				t.Fatal(err)
			}
			mq.QueryInto(qacc)
			localRank := qacc.Rank(v)
			if math.Abs(localRank-phi) > 0.05 {
				t.Errorf("quantiles: served q(%v)=%v has in-process rank %v", phi, v, localRank)
			}
		}
	})

	// ---- Phase 3: materialized views over the wire. Enable a fast-refresh
	// view on the Θ sketch phase 2 populated, check Info reports it, check
	// the served estimate (now a single view-accumulator fold server-side)
	// still answers correctly and tracks fresh ingest within the view's
	// staleness bound, then disable and confirm the sketch serves live again.
	t.Run("views", func(t *testing.T) {
		name := names[client.Theta]
		const refreshEvery = 5 * time.Millisecond
		if err := cl.EnableView(name, refreshEvery, -1); err != nil {
			t.Fatal(err)
		}
		vinf, err := cl.Info(client.Theta, name)
		if err != nil {
			t.Fatal(err)
		}
		if !vinf.ViewEnabled {
			t.Fatalf("Info after EnableView = %+v, want ViewEnabled", vinf)
		}
		// Phase 2 ingested 100k distinct keys; the viewed estimate must sit
		// inside the same accuracy envelope the live fold honoured.
		ingested := 4 * 25_000.0
		est, err := cl.ThetaEstimate(name)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est/ingested-1) > 0.05 {
			t.Fatalf("viewed estimate %v beyond the accuracy bound around %v", est, ingested)
		}
		// Fresh ingest becomes visible within S·r + one refresh interval:
		// poll past one refresh rather than assuming scheduler timing.
		const extra = 50_000
		bv := cl.NewBatch(client.Theta, name)
		for i := 0; i < extra; i++ {
			if err := bv.Add(1<<40 | uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := bv.Flush(); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			est, err = cl.ThetaEstimate(name)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(est/(ingested+extra)-1) <= 0.05 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("viewed estimate %v never converged to %v: refresher not folding new state",
					est, ingested+extra)
			}
			time.Sleep(refreshEvery)
		}
		if err := cl.DisableView(name); err != nil {
			t.Fatal(err)
		}
		vinf, err = cl.Info(client.Theta, name)
		if err != nil {
			t.Fatal(err)
		}
		if vinf.ViewEnabled {
			t.Fatal("ViewEnabled still set after DisableView")
		}
		// Disabling a viewless sketch is a typed server error on a healthy
		// connection, not a hangup.
		if err := cl.DisableView(name); err == nil {
			t.Error("second DisableView did not error")
		} else {
			var se *client.Error
			if !errors.As(err, &se) {
				t.Errorf("second DisableView error %v is not a server-typed *client.Error", err)
			}
		}
		if err := cl.Ping(); err != nil {
			t.Fatalf("connection unhealthy after typed error: %v", err)
		}
	})

	// ---- Phase 4: remote merge. A second daemon (always in-process; the
	// main server may be the CI binary) ingests a disjoint key range, then
	// the main daemon pulls the peer's snapshot over the wire and folds it
	// in. Count-Min total weight is exact after quiesces on both sides, so
	// the fold must account for every key from both daemons exactly once.
	t.Run("merge-remote", func(t *testing.T) {
		peerAddr, _ := startServer(t, fastsketches.RegistryConfig{Shards: 2, Writers: 2})
		peer, err := client.Dial(peerAddr, client.Options{Conns: 1, BatchSize: 1024})
		if err != nil {
			t.Fatal(err)
		}
		defer peer.Close()

		const half = 10_000
		for who, rng := range map[*client.Client][2]uint64{
			cl:   {0, half},
			peer: {half, 2 * half},
		} {
			b := who.NewBatch(client.CountMin, "e2e.mr")
			for i := rng[0]; i < rng[1]; i++ {
				if err := b.Add(i % 701); err != nil {
					t.Fatal(err)
				}
			}
			if err := b.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := who.Resize(client.CountMin, "e2e.mr", inf.Shards+1); err != nil {
				t.Fatal(err)
			}
		}

		if err := cl.MergeRemote(client.CountMin, "e2e.mr", peerAddr); err != nil {
			t.Fatal(err)
		}
		n, err := cl.CountMinN("e2e.mr")
		if err != nil {
			t.Fatal(err)
		}
		if n != 2*half {
			t.Fatalf("merged N = %d, want exactly %d (remote fold lost or duplicated weight)", n, 2*half)
		}
		// The in-process union of the same two streams is the reference: a
		// single sketch fed both ranges must agree with the daemon-to-daemon
		// fold per key (Count-Min counters are deterministic in the multiset).
		refH, _ := mirror.OpenCountMin("e2e.mr", fastsketches.Spec{})
		ref := refH.Sketch()
		for i := uint64(0); i < 2*half; i++ {
			ref.Update(0, i%701)
		}
		if err := ref.Resize(inf.Shards + 1); err != nil {
			t.Fatal(err)
		}
		for probe := uint64(0); probe < 20; probe++ {
			key := probe * 37 % 701
			servedCnt, err := cl.Count("e2e.mr", key)
			if err != nil {
				t.Fatal(err)
			}
			if refCnt := ref.Estimate(key); servedCnt != refCnt {
				t.Errorf("key %d: merged count %d != in-process union %d", key, servedCnt, refCnt)
			}
		}
		// The peer was a read-only participant.
		pn, err := peer.CountMinN("e2e.mr")
		if err != nil {
			t.Fatal(err)
		}
		if pn != half {
			t.Errorf("peer N = %d after merge, want untouched %d", pn, half)
		}
	})

	// ---- Phase 5: enumeration and drop.
	t.Run("admin", func(t *testing.T) {
		got, err := cl.Names()
		if err != nil {
			t.Fatal(err)
		}
		for fam, name := range names {
			if !slices.Contains(got, fmt.Sprintf("%s/%s", fam, name)) {
				t.Errorf("Names() = %v missing %s/%s", got, fam, name)
			}
		}
		if err := cl.Drop(client.CountMin, "e2e.fire"); err != nil {
			t.Fatal(err)
		}
		got, err = cl.Names()
		if err != nil {
			t.Fatal(err)
		}
		if slices.Contains(got, "countmin/e2e.fire") {
			t.Error("dropped sketch still enumerated")
		}
	})
}
