// Package client is the Go client library for sketchd, the fastsketches
// network front-end: connection pooling, request pipelining and batch
// buffering over the internal/wire protocol.
//
//	cl, err := client.Dial("127.0.0.1:7600", client.Options{})
//	defer cl.Close()
//
//	b := cl.NewBatch(client.Theta, "users.daily")   // ingestion path
//	for _, id := range userIDs {
//		b.Add(id) // buffered; flushed in large frames automatically
//	}
//	b.Flush()
//
//	est, err := cl.ThetaEstimate("users.daily")     // merged live query
//
// # Pooling and pipelining
//
// Dial opens Options.Conns TCP connections; requests round-robin across
// them, and each connection supports pipelining — many requests in flight,
// matched to responses by id — so concurrent goroutines share connections
// without head-of-line blocking on the client side. A connection that dies
// (server restart, network error) fails its in-flight requests once and is
// redialed transparently on next use. All methods are safe
// for concurrent use; a Batch is single-goroutine (make one per ingesting
// goroutine, which also gives each goroutine its own server-side lane fan-
// in).
//
// # Semantics
//
// The server answers through the registry's zero-alloc QueryInto plane, so
// a served query carries exactly the in-process staleness contract: it
// reflects all but at most S·r of the updates whose batches were acked
// before it was sent (Count-Min per-key counts keep the single-shard bound
// r). A Flush that returns nil means every item in the batch completed its
// Update on the server — acked items are never lost, including across a
// graceful server shutdown.
//
// The steady-state hot paths — Batch.Add/Flush and the scalar queries —
// allocate nothing: frames are encoded into per-connection reusable
// buffers, responses are decoded from a reusable read buffer, and in-flight
// call handles are pooled.
package client

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fastsketches/internal/wire"
)

// Family selects a sketch family; values alias the wire protocol's.
type Family = wire.Family

// The sketch families.
const (
	Theta     = wire.FamilyTheta
	HLL       = wire.FamilyHLL
	Quantiles = wire.FamilyQuantiles
	CountMin  = wire.FamilyCountMin
)

// Info is the served sketch metadata returned by Client.Info.
type Info = wire.Info

// OpsStats is the daemon's lifecycle sweeper / memory-budget counters
// returned by Client.OpsStats.
type OpsStats = wire.OpsStats

// ErrClosed is returned by operations on a closed Client.
var ErrClosed = errors.New("client: closed")

// Error is a server-reported failure (the request reached the server and
// was rejected: unknown sketch, invalid resize, unsupported query, …).
type Error struct{ Msg string }

func (e *Error) Error() string { return "sketchd: " + e.Msg }

// Options tune a Client. The zero value is ready to use.
type Options struct {
	// Conns is the connection pool size. Default 2.
	Conns int
	// BatchSize is the item count at which a Batch auto-flushes. Default
	// 4096, capped at wire.MaxBatchItems.
	BatchSize int
	// DialTimeout bounds each connection attempt. Default 5s.
	DialTimeout time.Duration
}

func (o *Options) normalise() {
	if o.Conns <= 0 {
		o.Conns = 2
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 4096
	}
	if o.BatchSize > wire.MaxBatchItems {
		o.BatchSize = wire.MaxBatchItems
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
}

// Client is a pooled, pipelined sketchd client. Create with Dial; safe for
// concurrent use. A pooled connection that fails (server restart, RST,
// read error) is redialed transparently the next time the round robin
// lands on its slot — requests that were in flight on it fail once with
// the transport error, and retries find a fresh connection.
type Client struct {
	addr   string
	opts   Options
	mu     sync.Mutex // guards conns slots across redials
	conns  []*conn
	next   atomic.Uint64
	closed atomic.Bool
}

// Dial connects the pool and returns a ready client.
func Dial(addr string, opts Options) (*Client, error) {
	opts.normalise()
	c := &Client{addr: addr, opts: opts}
	for i := 0; i < opts.Conns; i++ {
		cn, err := dialConn(addr, opts.DialTimeout)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("client: dialing %s: %w", addr, err)
		}
		c.conns = append(c.conns, cn)
	}
	return c, nil
}

// Close tears down the pool. In-flight requests fail with a transport
// error; buffered-but-unflushed Batch items are dropped.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cn := range c.conns {
		cn.close()
	}
	return nil
}

// pick round-robins the pool, replacing a slot whose connection has died
// with a freshly dialed one.
func (c *Client) pick() (*conn, error) {
	if c.closed.Load() || len(c.conns) == 0 {
		return nil, ErrClosed
	}
	i := int(c.next.Add(1) % uint64(len(c.conns)))
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() { // raced Close; don't dial past it
		return nil, ErrClosed
	}
	cn := c.conns[i]
	if cn.dead() {
		fresh, err := dialConn(c.addr, c.opts.DialTimeout)
		if err != nil {
			return nil, fmt.Errorf("client: redialing %s: %w", c.addr, err)
		}
		cn.close()
		c.conns[i] = fresh
		cn = fresh
	}
	return cn, nil
}

// do runs one request/response round trip, failing server-side errors as
// *Error. On success the caller reads the result off the returned call and
// releases it.
func (c *Client) do(sp *reqSpec) (*call, error) {
	if sp.op != wire.OpPing && sp.op != wire.OpNames && sp.op != wire.OpCheckpoint &&
		sp.op != wire.OpOpsStats {
		// Validate client-side: an invalid name would be rejected as a
		// protocol (not semantic) error and cost the connection.
		if err := wire.ValidName(sp.name); err != nil {
			return nil, err
		}
	}
	cn, err := c.pick()
	if err != nil {
		return nil, err
	}
	ca, err := cn.roundTrip(sp)
	if err != nil {
		return nil, err
	}
	if ca.status != wire.StatusOK {
		err := &Error{Msg: string(ca.body())}
		ca.release()
		return nil, err
	}
	return ca, nil
}

// doEmpty runs a request whose success response carries no body.
func (c *Client) doEmpty(sp *reqSpec) error {
	ca, err := c.do(sp)
	if err != nil {
		return err
	}
	ca.release()
	return nil
}

// doU64 runs a request and decodes its 8-byte result.
func (c *Client) doU64(sp *reqSpec) (uint64, error) {
	ca, err := c.do(sp)
	if err != nil {
		return 0, err
	}
	body := ca.body()
	if len(body) != 8 {
		ca.release()
		return 0, fmt.Errorf("client: %d-byte result, want 8", len(body))
	}
	v := binary.LittleEndian.Uint64(body)
	ca.release()
	return v, nil
}

func (c *Client) doF64(sp *reqSpec) (float64, error) {
	v, err := c.doU64(sp)
	return math.Float64frombits(v), err
}

// Ping checks liveness over one pooled connection.
func (c *Client) Ping() error {
	return c.doEmpty(&reqSpec{op: wire.OpPing})
}

// Create ensures the named sketch exists (sketches are also created
// implicitly by the first batch or query that touches them).
func (c *Client) Create(fam Family, name string) error {
	return c.doEmpty(&reqSpec{op: wire.OpCreate, fam: fam, name: name})
}

// Resize live-reshards the named sketch to the given shard count: the
// remote counterpart of Registry.Resize*, walking the throughput/staleness
// trade-off without restarting writers or queriers.
func (c *Client) Resize(fam Family, name string, shards int) error {
	if shards < 1 || shards > wire.MaxShards {
		return fmt.Errorf("client: resize to %d shards outside [1,%d]", shards, wire.MaxShards)
	}
	return c.doEmpty(&reqSpec{op: wire.OpResize, fam: fam, name: name, arg: uint64(shards)})
}

// Autoscale attaches an autoscaling controller (production defaults for
// cadence/streaks/cooldown) to every existing sketch registered under
// name: the shard count then follows ingest pressure between minShards and
// maxShards under the high/low per-shard rate water marks. Attach has
// replace semantics — controllers previously attached under the name are
// stopped first, so retrying or re-issuing the call is safe.
func (c *Client) Autoscale(name string, minShards, maxShards int, high, low float64) error {
	if minShards < 0 || maxShards < 0 || minShards > wire.MaxShards || maxShards > wire.MaxShards {
		return fmt.Errorf("client: autoscale shard bounds outside [0,%d]", wire.MaxShards)
	}
	return c.doEmpty(&reqSpec{op: wire.OpAutoscale, name: name,
		minS: uint32(minShards), maxS: uint32(maxShards), high: high, low: low})
}

// EnableView materializes the merged view of every sketch registered under
// name, across all families: the server re-folds each sketch's shards every
// refreshEvery and publishes the result atomically, after which served
// aggregate queries read the single published view — O(1) in the shard
// count — under a staleness bound of S·r plus one refresh interval. maxAge
// caps how stale a served view may be before queries transparently fall
// back to the live fold; zero derives it from refreshEvery, negative means
// never expire. Idempotent: re-issuing re-arms the views under the new
// intervals. Count-Min per-key counts keep reading their owning shard
// directly and are unaffected.
func (c *Client) EnableView(name string, refreshEvery, maxAge time.Duration) error {
	return c.doEmpty(&reqSpec{op: wire.OpEnableView, name: name,
		arg: uint64(refreshEvery.Nanoseconds()), arg2: uint64(maxAge.Nanoseconds())})
}

// DisableView stops the materialized views of every sketch registered under
// name; served aggregate queries fold live shard snapshots again (bound
// back to S·r).
func (c *Client) DisableView(name string) error {
	return c.doEmpty(&reqSpec{op: wire.OpDisableView, name: name})
}

// EnableWindow declares a sliding window on every sketch registered under
// name, across all families: the server keeps the last slots closed
// intervals of length interval plus the live one, and the Window* queries
// answer over exactly that span while cumulative queries keep serving the
// whole stream. A windowed answer reflects all but at most S·r of the
// window's acked updates, with the window boundary placed by the last
// rotation — at most one interval (plus rotation lag) old. slots 0 takes
// the server default; decay in (0,1) additionally maintains the Count-Min
// exponentially time-decayed plane (families without linearly scalable
// counters get the same window sans decay). Idempotent with replace
// semantics: an equal declaration keeps the ring, a different one collapses
// the old window into the cumulative state (no counts lost) and re-arms.
func (c *Client) EnableWindow(name string, interval time.Duration, slots int, decay float64) error {
	if interval <= 0 {
		return fmt.Errorf("client: window interval %v must be positive", interval)
	}
	if slots < 0 {
		return fmt.Errorf("client: window slots %d must be non-negative", slots)
	}
	return c.doEmpty(&reqSpec{op: wire.OpEnableWindow, name: name,
		arg: uint64(interval.Nanoseconds()), slots: uint32(slots), arg2: math.Float64bits(decay)})
}

// DisableWindow collapses the windows of every sketch registered under name
// back into their cumulative state — no counted update is lost; subsequent
// Window* queries on the name fail until a window is declared again.
func (c *Client) DisableWindow(name string) error {
	return c.doEmpty(&reqSpec{op: wire.OpDisableWindow, name: name})
}

// Drop closes and removes the named sketch server-side; the name becomes
// free for a fresh sketch.
func (c *Client) Drop(fam Family, name string) error {
	return c.doEmpty(&reqSpec{op: wire.OpDrop, fam: fam, name: name})
}

// Names enumerates every registered sketch as "family/name", sorted.
func (c *Client) Names() ([]string, error) {
	ca, err := c.do(&reqSpec{op: wire.OpNames})
	if err != nil {
		return nil, err
	}
	names, perr := wire.ParseNames(ca.body())
	ca.release()
	return names, perr
}

// Info returns the named sketch's metadata: shard/lane geometry and the
// live staleness bounds (Relaxation = S·r for merged queries,
// ShardRelaxation = r for per-key reads).
func (c *Client) Info(fam Family, name string) (Info, error) {
	ca, err := c.do(&reqSpec{op: wire.OpInfo, fam: fam, name: name})
	if err != nil {
		return Info{}, err
	}
	inf, perr := wire.ParseInfo(ca.body())
	ca.release()
	return inf, perr
}

// ThetaEstimate answers the named Θ sketch's merged distinct-count query.
func (c *Client) ThetaEstimate(name string) (float64, error) {
	return c.doF64(&reqSpec{op: wire.OpQuery, fam: Theta, q: wire.QueryEstimate, name: name})
}

// HLLEstimate answers the named HLL sketch's merged distinct-count query.
func (c *Client) HLLEstimate(name string) (float64, error) {
	return c.doF64(&reqSpec{op: wire.OpQuery, fam: HLL, q: wire.QueryEstimate, name: name})
}

// Quantile returns an element of the named quantiles sketch's merged state
// with normalized rank ≈ phi.
func (c *Client) Quantile(name string, phi float64) (float64, error) {
	return c.doF64(&reqSpec{op: wire.OpQuery, fam: Quantiles, q: wire.QueryQuantile,
		name: name, arg: math.Float64bits(phi)})
}

// Rank returns the estimated normalized rank of v in the named quantiles
// sketch's merged state.
func (c *Client) Rank(name string, v float64) (float64, error) {
	return c.doF64(&reqSpec{op: wire.OpQuery, fam: Quantiles, q: wire.QueryRank,
		name: name, arg: math.Float64bits(v)})
}

// QuantilesN returns the item count of the named quantiles sketch's merged
// state.
func (c *Client) QuantilesN(name string) (uint64, error) {
	return c.doU64(&reqSpec{op: wire.OpQuery, fam: Quantiles, q: wire.QueryN, name: name})
}

// Count returns the Count-Min frequency estimate of key — never an
// underestimate of the key's propagated prefix, with the single-shard
// staleness bound r.
func (c *Client) Count(name string, key uint64) (uint64, error) {
	return c.doU64(&reqSpec{op: wire.OpQuery, fam: CountMin, q: wire.QueryCount,
		name: name, arg: key})
}

// CountMinN returns the named Count-Min sketch's total weight (an
// aggregate read under the combined S·r bound).
func (c *Client) CountMinN(name string) (uint64, error) {
	return c.doU64(&reqSpec{op: wire.OpQuery, fam: CountMin, q: wire.QueryN, name: name})
}

// ThetaWindowEstimate answers the named Θ sketch's distinct-count query
// over its declared sliding window. Errors with a server-side *Error when
// no window is declared on the sketch.
func (c *Client) ThetaWindowEstimate(name string) (float64, error) {
	return c.doF64(&reqSpec{op: wire.OpQuery, fam: Theta, q: wire.QueryWindowEstimate, name: name})
}

// HLLWindowEstimate is ThetaWindowEstimate for the named HLL sketch.
func (c *Client) HLLWindowEstimate(name string) (float64, error) {
	return c.doF64(&reqSpec{op: wire.OpQuery, fam: HLL, q: wire.QueryWindowEstimate, name: name})
}

// WindowQuantile returns an element of the named quantiles sketch's
// windowed state with normalized rank ≈ phi. Errors when no window is
// declared.
func (c *Client) WindowQuantile(name string, phi float64) (float64, error) {
	return c.doF64(&reqSpec{op: wire.OpQuery, fam: Quantiles, q: wire.QueryWindowQuantile,
		name: name, arg: math.Float64bits(phi)})
}

// WindowQuantilesN returns the item count of the named quantiles sketch's
// windowed state. Errors when no window is declared.
func (c *Client) WindowQuantilesN(name string) (uint64, error) {
	return c.doU64(&reqSpec{op: wire.OpQuery, fam: Quantiles, q: wire.QueryWindowN, name: name})
}

// WindowCount returns the named Count-Min sketch's windowed frequency
// estimate of key: counts from the live interval and the last slots closed
// intervals only. Errors when no window is declared.
func (c *Client) WindowCount(name string, key uint64) (uint64, error) {
	return c.doU64(&reqSpec{op: wire.OpQuery, fam: CountMin, q: wire.QueryWindowCount,
		name: name, arg: key})
}

// WindowCountMinN returns the named Count-Min sketch's windowed total
// weight. Errors when no window is declared.
func (c *Client) WindowCountMinN(name string) (uint64, error) {
	return c.doU64(&reqSpec{op: wire.OpQuery, fam: CountMin, q: wire.QueryWindowN, name: name})
}

// DecayedCount returns the named Count-Min sketch's exponentially
// time-decayed frequency estimate of key: a count observed k rotations ago
// contributes with weight decay^k, the live interval with weight 1. Errors
// unless a window with decay in (0,1) is declared.
func (c *Client) DecayedCount(name string, key uint64) (uint64, error) {
	return c.doU64(&reqSpec{op: wire.OpQuery, fam: CountMin, q: wire.QueryDecayedCount,
		name: name, arg: key})
}

// Snapshot exports the named sketch's merged state as a portable snapshot
// blob: a self-describing record that Restore — on this daemon, another
// daemon, or an in-process Registry — folds back in losslessly. The export
// reflects all but at most S·r acked updates. Unlike the ingest and query
// paths, Snapshot does not create absent sketches; snapshotting an unknown
// name is a server-side *Error.
func (c *Client) Snapshot(fam Family, name string) ([]byte, error) {
	ca, err := c.do(&reqSpec{op: wire.OpSnapshot, fam: fam, name: name})
	if err != nil {
		return nil, err
	}
	snap := append([]byte(nil), ca.body()...)
	ca.release()
	return snap, nil
}

// Restore folds a snapshot blob (from Snapshot, here or on another daemon)
// into the named sketch, creating it if absent. Only sketch contents are
// folded — the receiving sketch keeps its own shard count, view and
// autoscale configuration. The blob's recorded family must match fam.
func (c *Client) Restore(fam Family, name string, snap []byte) error {
	if len(snap) > wire.MaxBlob {
		return fmt.Errorf("client: snapshot blob %d bytes exceeds wire limit %d", len(snap), wire.MaxBlob)
	}
	return c.doEmpty(&reqSpec{op: wire.OpRestore, fam: fam, name: name, blob: snap})
}

// MergeRemote makes the connected daemon dial the sketchd peer at addr,
// pull the peer's snapshot of (fam, name), and fold it into its own sketch
// of the same name (created if absent) — one round trip from the client's
// side, with the snapshot travelling daemon-to-daemon. The peer must
// already have the sketch.
func (c *Client) MergeRemote(fam Family, name, addr string) error {
	if addr == "" || len(addr) > wire.MaxAddr {
		return fmt.Errorf("client: peer address length %d outside [1,%d]", len(addr), wire.MaxAddr)
	}
	return c.doEmpty(&reqSpec{op: wire.OpMergeRemote, fam: fam, name: name, addr: addr})
}

// Checkpoint asks the daemon to write its checkpoint file now (every sketch,
// durably, atomic rename into place) and returns once it is on disk. Errors
// with a server-side *Error if the daemon was started without a checkpoint
// path.
func (c *Client) Checkpoint() error {
	return c.doEmpty(&reqSpec{op: wire.OpCheckpoint})
}

// OpsStats reports the daemon's lifecycle sweeper and memory-budget
// counters: sweeps run, idle-TTL evictions, budget sheds and shrinks, the
// latest resident-bytes estimate, the configured budget, and the live
// sketch count. Errors with a server-side *Error if the daemon was started
// without an ops manager (no -idle-ttl / -mem-budget).
func (c *Client) OpsStats() (OpsStats, error) {
	ca, err := c.do(&reqSpec{op: wire.OpOpsStats})
	if err != nil {
		return OpsStats{}, err
	}
	st, perr := wire.ParseOpsStats(ca.body())
	ca.release()
	if perr != nil {
		return OpsStats{}, fmt.Errorf("client: ops stats: %w", perr)
	}
	return st, nil
}

// reqSpec carries one request's parameters to the connection writer, which
// encodes it under the per-connection buffer lock — keeping every call
// site's hot path free of closures and per-request buffers.
type reqSpec struct {
	op         wire.Op
	fam        Family
	q          wire.Query
	name       string
	arg        uint64
	arg2       uint64
	slots      uint32
	minS, maxS uint32
	high, low  float64
	items      []uint64
	blob       []byte
	addr       string
}

// conn is one pooled connection: writes serialised under wmu into a
// reusable frame buffer, responses demultiplexed by a reader goroutine
// through pooled call handles — the pipelining plane.
type conn struct {
	nc net.Conn
	bw *bufio.Writer

	wmu  sync.Mutex
	wbuf []byte

	pmu     sync.Mutex
	pending map[uint32]*call
	nextID  uint32
	err     error
}

// call is one in-flight request. Results up to scalarMax bytes land in the
// inline array (zero-alloc scalar path); larger bodies (name lists, error
// messages) are copied to big.
type call struct {
	done   chan struct{}
	status byte
	n      uint8
	scalar [32]byte
	big    []byte
	err    error
}

var callPool = sync.Pool{New: func() any { return &call{done: make(chan struct{}, 1)} }}

func (ca *call) body() []byte {
	if ca.big != nil {
		return ca.big
	}
	return ca.scalar[:ca.n]
}

func (ca *call) release() {
	ca.big = nil
	ca.err = nil
	callPool.Put(ca)
}

func dialConn(addr string, timeout time.Duration) (*conn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	cn := &conn{
		nc:      nc,
		bw:      bufio.NewWriterSize(nc, 1<<16),
		pending: make(map[uint32]*call),
	}
	go cn.readLoop()
	return cn, nil
}

func (cn *conn) close() {
	cn.nc.Close() // readLoop fails and completes all pending calls
}

// dead reports whether the connection has seen a transport failure and can
// serve no further requests.
func (cn *conn) dead() bool {
	cn.pmu.Lock()
	defer cn.pmu.Unlock()
	return cn.err != nil
}

// fail completes every pending call with err (first failure wins) and
// poisons the connection.
func (cn *conn) fail(err error) {
	cn.pmu.Lock()
	if cn.err == nil {
		cn.err = err
	}
	for id, ca := range cn.pending {
		delete(cn.pending, id)
		ca.err = cn.err
		ca.done <- struct{}{}
	}
	cn.pmu.Unlock()
}

// readLoop demultiplexes response frames to their pending calls by id.
func (cn *conn) readLoop() {
	br := bufio.NewReaderSize(cn.nc, 1<<16)
	var buf []byte
	for {
		payload, err := wire.ReadFrame(br, &buf)
		if err != nil {
			cn.fail(fmt.Errorf("client: transport: %w", err))
			return
		}
		status, id, body, err := wire.ParseResponse(payload)
		if err != nil {
			cn.fail(err)
			return
		}
		cn.pmu.Lock()
		ca := cn.pending[id]
		delete(cn.pending, id)
		cn.pmu.Unlock()
		if ca == nil {
			cn.fail(fmt.Errorf("client: unmatched response id %d", id))
			return
		}
		ca.status = status
		if len(body) <= len(ca.scalar) {
			ca.n = uint8(copy(ca.scalar[:], body))
			ca.big = nil
		} else {
			ca.big = append([]byte(nil), body...)
			ca.n = 0
		}
		ca.done <- struct{}{}
	}
}

// roundTrip registers a call, encodes and flushes the request, and blocks
// for the response. Multiple goroutines round-tripping on one conn give
// pipelining: writes interleave under wmu while responses demultiplex by
// id.
func (cn *conn) roundTrip(sp *reqSpec) (*call, error) {
	ca := callPool.Get().(*call)
	ca.err = nil
	ca.big = nil

	cn.pmu.Lock()
	if cn.err != nil {
		err := cn.err
		cn.pmu.Unlock()
		callPool.Put(ca)
		return nil, err
	}
	id := cn.nextID
	cn.nextID++
	cn.pending[id] = ca
	cn.pmu.Unlock()

	cn.wmu.Lock()
	b := cn.wbuf[:0]
	switch sp.op {
	case wire.OpPing:
		b = wire.AppendPing(b, id)
	case wire.OpNames:
		b = wire.AppendNamesReq(b, id)
	case wire.OpCreate:
		b = wire.AppendCreate(b, id, sp.fam, sp.name)
	case wire.OpDrop:
		b = wire.AppendDrop(b, id, sp.fam, sp.name)
	case wire.OpInfo:
		b = wire.AppendInfo(b, id, sp.fam, sp.name)
	case wire.OpResize:
		b = wire.AppendResize(b, id, sp.fam, sp.name, int(sp.arg))
	case wire.OpAutoscale:
		b = wire.AppendAutoscale(b, id, sp.name, int(sp.minS), int(sp.maxS), sp.high, sp.low)
	case wire.OpEnableView:
		b = wire.AppendEnableView(b, id, sp.name, sp.arg, sp.arg2)
	case wire.OpDisableView:
		b = wire.AppendDisableView(b, id, sp.name)
	case wire.OpEnableWindow:
		b = wire.AppendEnableWindow(b, id, sp.name, sp.arg, sp.slots, math.Float64frombits(sp.arg2))
	case wire.OpDisableWindow:
		b = wire.AppendDisableWindow(b, id, sp.name)
	case wire.OpBatch:
		b = wire.AppendBatch(b, id, sp.fam, sp.name, sp.items)
	case wire.OpQuery:
		b = wire.AppendQuery(b, id, sp.fam, sp.q, sp.name, sp.arg)
	case wire.OpSnapshot:
		b = wire.AppendSnapshotReq(b, id, sp.fam, sp.name)
	case wire.OpRestore:
		b = wire.AppendRestore(b, id, sp.fam, sp.name, sp.blob)
	case wire.OpMergeRemote:
		b = wire.AppendMergeRemote(b, id, sp.fam, sp.name, sp.addr)
	case wire.OpCheckpoint:
		b = wire.AppendCheckpointReq(b, id)
	case wire.OpOpsStats:
		b = wire.AppendOpsStatsReq(b, id)
	}
	cn.wbuf = b
	_, werr := cn.bw.Write(b)
	if werr == nil {
		werr = cn.bw.Flush()
	}
	cn.wmu.Unlock()
	if werr != nil {
		// fail() completes our pending call too (unless the response raced
		// in first, in which case the result below is simply valid).
		cn.fail(fmt.Errorf("client: transport: %w", werr))
	}

	<-ca.done
	if ca.err != nil {
		err := ca.err
		ca.release()
		return nil, err
	}
	return ca, nil
}
