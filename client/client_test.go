package client_test

import (
	"errors"
	"net"
	"sync"
	"testing"

	"fastsketches"
	"fastsketches/client"
	"fastsketches/internal/server"
)

// startServer boots an in-process sketchd (server over a fresh registry)
// on loopback and returns its address; teardown rides the test.
func startServer(t *testing.T, cfg fastsketches.RegistryConfig) (string, *fastsketches.Registry) {
	t.Helper()
	reg, err := fastsketches.NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(reg)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown()
		if err := <-done; !errors.Is(err, server.ErrServerClosed) {
			t.Errorf("Serve: %v", err)
		}
		reg.Close()
	})
	return ln.Addr().String(), reg
}

func TestClientBasics(t *testing.T) {
	addr, _ := startServer(t, fastsketches.RegistryConfig{Shards: 2, Writers: 2})
	cl, err := client.Dial(addr, client.Options{Conns: 2, BatchSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}

	// Batch auto-flushes at BatchSize and on Flush; acks cover every item.
	b := cl.NewBatch(client.Theta, "users")
	for i := 0; i < 1050; i++ {
		if err := b.Add(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if b.Len() >= 100 {
		t.Fatalf("batch holds %d items, auto-flush at 100 never fired", b.Len())
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("batch holds %d items after Flush", b.Len())
	}

	// 1050 distinct keys is deep inside the eager window: the served
	// estimate is exact once the propagators catch up; allow the S·r lag.
	inf, err := cl.Info(client.Theta, "users")
	if err != nil {
		t.Fatal(err)
	}
	est, err := cl.ThetaEstimate("users")
	if err != nil {
		t.Fatal(err)
	}
	if est < float64(1050-int(inf.Relaxation)) || est > 1050 {
		t.Fatalf("estimate %.0f outside [1050 - S·r, 1050] (S·r=%d)", est, inf.Relaxation)
	}

	// Quantiles round trip.
	qb := cl.NewBatch(client.Quantiles, "lat")
	for i := 0; i < 2000; i++ {
		if err := qb.AddFloat(float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := qb.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Quantile("lat", 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Rank("lat", 1000); err != nil {
		t.Fatal(err)
	}
	if n, err := cl.QuantilesN("lat"); err != nil || n > 2000 {
		t.Fatalf("QuantilesN = %d (err %v)", n, err)
	}

	// Count-Min round trip.
	cb := cl.NewBatch(client.CountMin, "api")
	for i := 0; i < 900; i++ {
		if err := cb.Add(uint64(i % 3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cb.Flush(); err != nil {
		t.Fatal(err)
	}
	if cnt, err := cl.Count("api", 1); err != nil || cnt > 900 {
		t.Fatalf("Count = %d (err %v)", cnt, err)
	}

	// Enumeration, admin ops.
	names, err := cl.Names()
	if err != nil || len(names) != 3 {
		t.Fatalf("Names = %v (err %v)", names, err)
	}
	if err := cl.Resize(client.Theta, "users", 4); err != nil {
		t.Fatal(err)
	}
	if inf, err := cl.Info(client.Theta, "users"); err != nil || inf.Shards != 4 {
		t.Fatalf("Info after resize = %+v (err %v)", inf, err)
	}
	if err := cl.Autoscale("users", 2, 8, 1e9, 1e3); err != nil {
		t.Fatal(err)
	}
	if err := cl.Drop(client.CountMin, "api"); err != nil {
		t.Fatal(err)
	}
	if n, err := cl.CountMinN("api"); err != nil || n != 0 {
		t.Fatalf("recreated countmin N = %d (err %v), want 0", n, err)
	}
}

func TestClientServerErrors(t *testing.T) {
	addr, _ := startServer(t, fastsketches.RegistryConfig{})
	cl, err := client.Dial(addr, client.Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Semantic errors come back as *client.Error and leave the connection
	// usable.
	var srvErr *client.Error
	if _, err := cl.Info(client.Theta, "absent"); !errors.As(err, &srvErr) {
		t.Fatalf("Info on absent sketch: %v, want *client.Error", err)
	}
	if _, err := cl.Quantile("absent-but-created", 2.0); err != nil {
		// phi outside [0,1] is the sketch's business, not a protocol error;
		// the call itself must still round-trip.
		t.Fatalf("quantile round-trip: %v", err)
	}
	if err := cl.Drop(client.HLL, "never-existed"); !errors.As(err, &srvErr) {
		t.Fatalf("Drop absent: %v, want *client.Error", err)
	}
	if err := cl.Ping(); err != nil {
		t.Fatalf("connection unusable after server errors: %v", err)
	}

	// Client-side validation rejects invalid names without spending the
	// connection.
	if _, err := cl.ThetaEstimate(""); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}

	// A closed client fails fast.
	cl.Close()
	if err := cl.Ping(); err == nil {
		t.Fatal("Ping succeeded on closed client")
	}
}

// TestClientConcurrentPipelining drives many goroutines over a small pool:
// pipelined requests must demultiplex correctly (every goroutine sees its
// own monotonic counts).
func TestClientConcurrentPipelining(t *testing.T) {
	addr, _ := startServer(t, fastsketches.RegistryConfig{Shards: 2, Writers: 4})
	cl, err := client.Dial(addr, client.Options{Conns: 2, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			b := cl.NewBatch(client.CountMin, "pipe")
			for i := 0; i < perG; i++ {
				if err := b.Add(uint64(g)); err != nil {
					t.Error(err)
					return
				}
				if i%97 == 0 {
					if _, err := cl.CountMinN("pipe"); err != nil {
						t.Error(err)
						return
					}
				}
			}
			if err := b.Flush(); err != nil {
				t.Error(err)
				return
			}
			// Every flushed item is completed: this goroutine's key count
			// can lag only by the single-shard staleness bound r. Above,
			// Count-Min may overestimate (hash collisions with other keys,
			// ε·N_shard additive), but never past the total weight.
			inf, err := cl.Info(client.CountMin, "pipe")
			if err != nil {
				t.Error(err)
				return
			}
			cnt, err := cl.Count("pipe", uint64(g))
			if err != nil {
				t.Error(err)
				return
			}
			if cnt > goroutines*perG || cnt < perG-uint64(min(perG, int(inf.ShardRelaxation))) {
				t.Errorf("goroutine %d: count %d outside [%d - r, total] (r=%d)",
					g, cnt, perG, inf.ShardRelaxation)
			}
		}(g)
	}
	wg.Wait()
}

// TestClientReconnects pins the pool's self-healing: after the server
// restarts (all pooled connections dead), requests fail at most once per
// slot and then succeed on transparently redialed connections.
func TestClientReconnects(t *testing.T) {
	reg1, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln1.Addr().String()
	srv1 := server.New(reg1)
	done1 := make(chan error, 1)
	go func() { done1 <- srv1.Serve(ln1) }()

	cl, err := client.Dial(addr, client.Options{Conns: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}

	// Kill the first server; its connections die under the client.
	srv1.Shutdown()
	<-done1
	reg1.Close()

	// Restart on the same address.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	reg2, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := server.New(reg2)
	done2 := make(chan error, 1)
	go func() { done2 <- srv2.Serve(ln2) }()
	t.Cleanup(func() {
		srv2.Shutdown()
		<-done2
		reg2.Close()
	})

	// Each pool slot may fail once (the buffered dead conn); after that
	// every request must succeed on redialed connections.
	failures := 0
	for i := 0; i < 10; i++ {
		if err := cl.Ping(); err != nil {
			failures++
			continue
		}
	}
	if failures > 2 {
		t.Fatalf("%d failures after restart; want ≤ one per pool slot (2)", failures)
	}
	if err := cl.Ping(); err != nil {
		t.Fatalf("client never recovered: %v", err)
	}
}

// TestClientResizeBounds pins the shard-count validation on both sides of
// the wire: out-of-range values are rejected client-side (no round trip,
// connection intact) and would be rejected by the server regardless.
func TestClientResizeBounds(t *testing.T) {
	addr, _ := startServer(t, fastsketches.RegistryConfig{})
	cl, err := client.Dial(addr, client.Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Resize(client.Theta, "x", 0); err == nil {
		t.Fatal("resize to 0 accepted")
	}
	if err := cl.Resize(client.Theta, "x", -1); err == nil {
		t.Fatal("negative resize accepted (would wrap to a huge uint32)")
	}
	if err := cl.Resize(client.Theta, "x", 1<<20); err == nil {
		t.Fatal("absurd shard count accepted")
	}
	if err := cl.Autoscale("x", 1, 1<<20, 1e6, 1e3); err == nil {
		t.Fatal("absurd autoscale bound accepted")
	}
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
}
