package client

import (
	"encoding/binary"
	"fmt"
	"math"

	"fastsketches/internal/wire"
)

// Batch is the buffered ingestion path: items accumulate client-side and
// ship as one OpBatch frame when the buffer reaches Options.BatchSize (or
// on Flush), which the server fans into the sketch's writer lanes. A
// successful Flush means every item's Update completed server-side — the
// batch is covered by the merged-query staleness bound from that point on.
//
// A Batch is NOT safe for concurrent use: make one per ingesting
// goroutine. Each flush travels over one pooled connection, so several
// goroutines with their own batches drive the server's lanes from several
// connections concurrently. On error the buffered items are dropped (the
// error reports how many).
type Batch struct {
	c     *Client
	fam   Family
	name  string
	items []uint64
	limit int
}

// NewBatch returns an empty batch buffer for the named sketch.
func (c *Client) NewBatch(fam Family, name string) *Batch {
	return &Batch{
		c: c, fam: fam, name: name,
		items: make([]uint64, 0, c.opts.BatchSize),
		limit: c.opts.BatchSize,
	}
}

// Add buffers one uint64 key (Θ, HLL and Count-Min families), flushing if
// the buffer is full.
func (b *Batch) Add(key uint64) error {
	b.items = append(b.items, key)
	if len(b.items) >= b.limit {
		return b.Flush()
	}
	return nil
}

// AddFloat buffers one float64 value (quantiles family), flushing if the
// buffer is full.
func (b *Batch) AddFloat(v float64) error {
	return b.Add(math.Float64bits(v))
}

// Len returns the number of buffered, unflushed items.
func (b *Batch) Len() int { return len(b.items) }

// Flush ships the buffered items as one batch frame and waits for the ack.
// No-op on an empty buffer. On error the buffer is cleared: the dropped
// items are reported in the error and must be re-Added to retry.
func (b *Batch) Flush() error {
	if len(b.items) == 0 {
		return nil
	}
	n := len(b.items)
	ca, err := b.c.do(&reqSpec{op: wire.OpBatch, fam: b.fam, name: b.name, items: b.items})
	b.items = b.items[:0]
	if err != nil {
		return fmt.Errorf("client: batch of %d items dropped: %w", n, err)
	}
	body := ca.body()
	if len(body) != 4 {
		ca.release()
		return fmt.Errorf("client: %d-byte batch ack, want 4", len(body))
	}
	acked := binary.LittleEndian.Uint32(body)
	ca.release()
	if int(acked) != n {
		return fmt.Errorf("client: server acked %d of %d items", acked, n)
	}
	return nil
}
