package client

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"fastsketches/internal/wire"
)

// Batch is the buffered ingestion path: items accumulate client-side and
// ship as one OpBatch frame when the buffer reaches Options.BatchSize (or
// on Flush), which the server fans into the sketch's writer lanes. A
// successful Flush means every item's Update completed server-side — the
// batch is covered by the merged-query staleness bound from that point on.
//
// A Batch is NOT safe for concurrent use: make one per ingesting
// goroutine. Each flush travels over one pooled connection, so several
// goroutines with their own batches drive the server's lanes from several
// connections concurrently.
//
// A failed Flush never silently loses items. On a transport failure (dead
// connection, failed redial, mid-pipeline reset) the buffer is RETAINED:
// the returned error says so, and calling Flush again retries the same
// items over a freshly dialed connection. Only a deterministic rejection —
// a server-reported *Error, an invalid name, a closed client — DROPS the
// buffer, since retrying could never succeed; the error reports how many
// items were dropped. Retained items past the configured batch size are
// shipped in wire-legal chunks, so a retry after accumulation never builds
// an oversized frame.
type Batch struct {
	c     *Client
	fam   Family
	name  string
	items []uint64
	limit int
}

// NewBatch returns an empty batch buffer for the named sketch.
func (c *Client) NewBatch(fam Family, name string) *Batch {
	return &Batch{
		c: c, fam: fam, name: name,
		items: make([]uint64, 0, c.opts.BatchSize),
		limit: c.opts.BatchSize,
	}
}

// Add buffers one uint64 key (Θ, HLL and Count-Min families), flushing if
// the buffer is full. On a transport error the buffer (including this item)
// is retained for the next Flush; a caller that keeps Adding past failures
// grows the buffer without bound, so either stop on error or Reset.
func (b *Batch) Add(key uint64) error {
	b.items = append(b.items, key)
	if len(b.items) >= b.limit {
		return b.Flush()
	}
	return nil
}

// AddFloat buffers one float64 value (quantiles family), flushing if the
// buffer is full.
func (b *Batch) AddFloat(v float64) error {
	return b.Add(math.Float64bits(v))
}

// Len returns the number of buffered, unflushed items.
func (b *Batch) Len() int { return len(b.items) }

// Reset discards the buffered items without sending them.
func (b *Batch) Reset() { b.items = b.items[:0] }

// dropsBatch reports whether a Flush failure is deterministic — the request
// itself was rejected, so retrying the same items can never succeed — as
// opposed to a transport failure that a retry over a redialed connection
// may clear.
func dropsBatch(err error) bool {
	var se *Error
	return errors.As(err, &se) || errors.Is(err, wire.ErrBadName) || errors.Is(err, ErrClosed)
}

// Flush ships the buffered items in batch frames of at most
// Options.BatchSize and waits for each ack. No-op on an empty buffer. On a
// transport error the unacked items stay buffered for a retry; on a
// deterministic rejection they are dropped (the error reports which).
func (b *Batch) Flush() error {
	for len(b.items) > 0 {
		n := len(b.items)
		if n > b.limit {
			n = b.limit
		}
		ca, err := b.c.do(&reqSpec{op: wire.OpBatch, fam: b.fam, name: b.name, items: b.items[:n]})
		if err != nil {
			if dropsBatch(err) {
				dropped := len(b.items)
				b.items = b.items[:0]
				return fmt.Errorf("client: batch of %d items dropped: %w", dropped, err)
			}
			return fmt.Errorf("client: batch flush failed, %d items retained for retry: %w",
				len(b.items), err)
		}
		body := ca.body()
		if len(body) != 4 {
			ca.release()
			b.items = b.items[:0]
			return fmt.Errorf("client: %d-byte batch ack, want 4", len(body))
		}
		acked := binary.LittleEndian.Uint32(body)
		ca.release()
		// The chunk is acked: drop it and slide any retained tail down.
		b.items = b.items[:copy(b.items, b.items[n:])]
		if int(acked) != n {
			return fmt.Errorf("client: server acked %d of %d items", acked, n)
		}
	}
	return nil
}
