package client_test

// TestE2EOps drives the multi-tenant ops hardening against a real sketchd
// binary: /metrics scraped mid-ingest (all series live, pressure counters
// monotonic, ingest histograms populated), idle-TTL eviction firing on the
// lane-quiescing server drop path, memory-budget shrink/shed firing under
// tenant pressure, the OpsStats admin op reporting it all over the wire, and
// a recreated tenant absorbing writes after its eviction.

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"fastsketches/client"
)

var metricsRe = regexp.MustCompile(`metrics on http://(\S+)/metrics`)

// startSketchdOps boots the binary with the ops stack armed: an aggressive
// idle TTL and sweep cadence, a budget sized to a couple of tenants, and an
// ephemeral /metrics listener whose address is parsed from the daemon log.
func startSketchdOps(t *testing.T, bin string) (*exec.Cmd, string, string) {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-shards", "2", "-writers", "2",
		"-metrics-addr", "127.0.0.1:0",
		"-idle-ttl", "600ms",
		// A 2-shard Count-Min resident is ~218KB, a 1-shard one ~109KB:
		// 300KB fits Phase A's single tenant but stays exceeded even after
		// the sweeper shrinks every Phase B filler, forcing the shed path.
		"-mem-budget", "300000",
		"-ops-sweep-every", "100ms",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrC := make(chan string, 1)
	metricsC := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := servingRe.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrC <- m[1]:
				default:
				}
			}
			if m := metricsRe.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case metricsC <- m[1]:
				default:
				}
			}
		}
	}()
	var addr, maddr string
	deadline := time.After(15 * time.Second)
	for addr == "" || maddr == "" {
		select {
		case addr = <-addrC:
		case maddr = <-metricsC:
		case <-deadline:
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			t.Fatalf("sketchd never reported both addresses (serve=%q metrics=%q)", addr, maddr)
		}
	}
	return cmd, addr, maddr
}

// scrape fetches /metrics and returns the body.
func scrape(t *testing.T, maddr string) string {
	t.Helper()
	resp, err := http.Get("http://" + maddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("scrape content type %q", ct)
	}
	return string(body)
}

// sampleValue extracts the value of the first sample line whose name and
// label substring match.
func sampleValue(t *testing.T, body, metric, labelSub string) (float64, bool) {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, metric) || strings.HasPrefix(line, "#") {
			continue
		}
		if labelSub != "" && !strings.Contains(line, labelSub) {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			continue
		}
		v, err := strconv.ParseFloat(f[len(f)-1], 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		return v, true
	}
	return 0, false
}

func TestE2EOps(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real daemon")
	}
	bin := buildSketchd(t)
	daemon, addr, maddr := startSketchdOps(t, bin)
	defer func() {
		_ = daemon.Process.Kill()
		_ = daemon.Wait()
	}()
	cl, err := client.Dial(addr, client.Options{Conns: 2, BatchSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// ---- Phase A: scrape mid-ingest. Writes keep flowing between the two
	// scrapes, so the second must observe strictly more ingested pressure.
	ingestRound := func(n int) {
		b := cl.NewBatch(client.CountMin, "ops.main")
		for i := 0; i < n; i++ {
			if err := b.Add(uint64(i % 509)); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	ingestRound(20_000)
	body1 := scrape(t, maddr)
	mainLabels := `family="countmin",name="ops.main"`
	ing1, ok := sampleValue(t, body1, "fastsketches_sketch_ingested_total", mainLabels)
	if !ok || ing1 <= 0 {
		t.Fatalf("mid-ingest scrape: ingested_total{%s} = %v (ok=%v)", mainLabels, ing1, ok)
	}
	for _, metric := range []string{
		"fastsketches_sketch_shards",
		"fastsketches_sketch_relaxation",
		"fastsketches_sketch_backlog",
		"fastsketches_sketch_resident_bytes",
		"fastsketches_registry_sketches",
		"fastsketches_ops_sweeps_total",
		"fastsketches_ops_mem_budget_bytes",
		"fastsketches_ingest_chunk_items_count",
		"fastsketches_ingest_chunk_duration_seconds_sum",
	} {
		if _, ok := sampleValue(t, body1, metric, ""); !ok {
			t.Errorf("scrape missing %s", metric)
		}
	}
	if v, _ := sampleValue(t, body1, "fastsketches_ingest_chunk_items_count", ""); v <= 0 {
		t.Error("ingest histogram empty while batches were being applied")
	}
	if v, _ := sampleValue(t, body1, "fastsketches_ops_mem_budget_bytes", ""); v != 300_000 {
		t.Errorf("mem_budget_bytes %v, want the configured 300000", v)
	}

	ingestRound(20_000)
	body2 := scrape(t, maddr)
	ing2, _ := sampleValue(t, body2, "fastsketches_sketch_ingested_total", mainLabels)
	if ing2 <= ing1 {
		t.Errorf("pressure not monotonic across scrapes: %v then %v", ing1, ing2)
	}

	// ---- Phase B: tenant pressure. A burst of filler tenants pushes the
	// resident set over the 1MB budget; sweeps (every 100ms) first shrink
	// them to one shard, then shed them.
	for i := 0; i < 6; i++ {
		b := cl.NewBatch(client.CountMin, fmt.Sprintf("ops.filler%d", i))
		for j := 0; j < 1000; j++ {
			if err := b.Add(uint64(j)); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	waitStats := func(what string, cond func(client.OpsStats) bool) client.OpsStats {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for {
			st, err := cl.OpsStats()
			if err != nil {
				t.Fatal(err)
			}
			if cond(st) {
				return st
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s; last stats %+v", what, st)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	st := waitStats("budget shrink+shed", func(st client.OpsStats) bool {
		return st.BudgetShrinks > 0 && st.BudgetSheds > 0
	})
	if st.Sweeps == 0 || st.ResidentBytes <= 0 || st.BudgetBytes != 300_000 {
		t.Errorf("ops stats after shed: %+v", st)
	}

	// ---- Phase C: idle eviction. Everything has now been quiet past the
	// 600ms TTL at some point; ops.main itself must eventually be evicted.
	st = waitStats("idle eviction", func(st client.OpsStats) bool { return st.Evictions > 0 })

	// /metrics keeps serving (and reports the reclaim) while all of this
	// fires — the acceptance gate for the observability plane.
	body3 := scrape(t, maddr)
	if v, _ := sampleValue(t, body3, "fastsketches_ops_evictions_total", ""); v < 1 {
		t.Errorf("exposition evictions_total %v, want ≥ 1", v)
	}
	if v, ok := sampleValue(t, body3, "fastsketches_ops_budget_sheds_total", ""); !ok || v < 1 {
		t.Errorf("exposition budget_sheds_total %v (ok=%v), want ≥ 1", v, ok)
	}

	// ---- Phase D: a recreated tenant absorbs writes after its eviction —
	// the server drop path quiesced the lane workers rather than wedging
	// them. Quiesce (resize) then read back the exact post-eviction count.
	waitStats("ops.main evicted", func(st client.OpsStats) bool {
		return st.Evictions+st.BudgetSheds >= 1
	})
	b := cl.NewBatch(client.CountMin, "ops.main")
	const reborn = 5000
	for i := 0; i < reborn; i++ {
		if err := b.Add(uint64(i % 13)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Resize(client.CountMin, "ops.main", 3); err != nil {
		t.Fatal(err)
	}
	n, err := cl.CountMinN("ops.main")
	if err != nil {
		t.Fatal(err)
	}
	// The tenant may have been evicted again between the flush and the
	// query (the TTL is 600ms), in which case N restarts below reborn; it
	// must never exceed what was sent after the last recreation.
	if n > reborn {
		t.Errorf("post-eviction N = %d, want ≤ %d (stale pre-eviction state leaked)", n, reborn)
	}
}
