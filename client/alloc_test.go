//go:build !race

package client_test

// TestServedQueryZeroAlloc extends the repository's zero-allocation
// merged-query contract across the wire: with server and client in one
// process over a real loopback TCP connection, a steady-state scalar query
// — client encode, server decode, QueryInto through the connection's
// reusable accumulator, response encode, client decode — must allocate
// (essentially) nothing end to end. testing.AllocsPerRun counts mallocs
// process-wide, so this covers the server's read/serve/write path and the
// client's pooled-call pipeline together. Excluded under -race for the
// same reason as the in-process contract tests: the race-mode sync.Pool
// drops puts at random, making pool misses expected.

import (
	"testing"

	"fastsketches"
	"fastsketches/client"
)

func TestServedQueryZeroAlloc(t *testing.T) {
	addr, _ := startServer(t, fastsketches.RegistryConfig{Shards: 4, Writers: 2})
	cl, err := client.Dial(addr, client.Options{Conns: 1, BatchSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	b := cl.NewBatch(client.Theta, "alloc")
	cb := cl.NewBatch(client.CountMin, "alloc")
	for i := 0; i < 10_000; i++ {
		if err := b.Add(uint64(i)); err != nil {
			t.Fatal(err)
		}
		if err := cb.Add(uint64(i % 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cb.Flush(); err != nil {
		t.Fatal(err)
	}

	// Warm every reusable piece: connection accumulators server-side, call
	// handles and frame buffers client-side, map buckets on both.
	for i := 0; i < 64; i++ {
		if _, err := cl.ThetaEstimate("alloc"); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Count("alloc", uint64(i%64)); err != nil {
			t.Fatal(err)
		}
	}

	// The tolerance absorbs rare runtime-internal allocations (netpoll,
	// scheduler); the contract being pinned is "no per-query allocation on
	// the serving path", which would show up as ≥ 1 alloc/op.
	const runs = 200
	if allocs := testing.AllocsPerRun(runs, func() {
		if _, err := cl.ThetaEstimate("alloc"); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0.5 {
		t.Errorf("served theta estimate allocates %.2f/op end to end, want ~0", allocs)
	}
	if allocs := testing.AllocsPerRun(runs, func() {
		if _, err := cl.Count("alloc", 7); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0.5 {
		t.Errorf("served count-min lookup allocates %.2f/op end to end, want ~0", allocs)
	}

	// Batched ingest: steady-state Add+Flush reuses the batch buffer, the
	// write path, the per-connection batch countdown, and the ack path.
	// Since the lane rings replaced the per-batch WaitGroup the whole flush
	// is allocation-free.
	ib := cl.NewBatch(client.CountMin, "alloc")
	if allocs := testing.AllocsPerRun(runs, func() {
		for i := 0; i < 512; i++ {
			if err := ib.Add(uint64(i % 64)); err != nil {
				t.Fatal(err)
			}
		}
		if err := ib.Flush(); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0.5 {
		t.Errorf("batched ingest allocates %.2f/flush end to end, want ~0", allocs)
	}
}

// TestServedIngestZeroAlloc pins the overhauled ingest hot path: a
// synchronous batch flush — client encode, server decode into per-lane
// scratch, ring dispatch across lane workers, batched writer updates, ack —
// allocates nothing in steady state, at batch sizes on both sides of the
// lane fan-out threshold, on a multi-lane server.
//
// The pinned family is CountMin because its global sketch is genuinely
// steady-state: Θ and Quantiles keep growing internal structure on a
// changing stream (adaptive buffers, compaction levels), which is amortised
// data-structure growth, not per-batch serving overhead. CountMin shares
// the entire transport, ring-dispatch, and core UpdateBatch path with the
// other families, so a regression anywhere on that path shows up here.
func TestServedIngestZeroAlloc(t *testing.T) {
	addr, _ := startServer(t, fastsketches.RegistryConfig{Shards: 2, Writers: 4})
	cl, err := client.Dial(addr, client.Options{Conns: 1, BatchSize: 8192})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const runs = 100
	for _, tc := range []struct {
		name  string
		batch int
	}{
		{"small-batch", 64},   // below minChunkItems: single-lane dispatch
		{"large-batch", 4096}, // above lanes·minChunkItems: full fan-out
	} {
		cb := cl.NewBatch(client.CountMin, "ingest-"+tc.name)
		// Warm: create the sketch, the lane workers, the per-lane decode
		// scratch, and the batch buffer.
		for w := 0; w < 8; w++ {
			for i := 0; i < tc.batch; i++ {
				if err := cb.Add(uint64(i % 64)); err != nil {
					t.Fatal(err)
				}
			}
			if err := cb.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		if allocs := testing.AllocsPerRun(runs, func() {
			for i := 0; i < tc.batch; i++ {
				if err := cb.Add(uint64(i % 64)); err != nil {
					t.Fatal(err)
				}
			}
			if err := cb.Flush(); err != nil {
				t.Fatal(err)
			}
		}); allocs > 0.5 {
			t.Errorf("%s: batch flush allocates %.2f/op end to end, want 0", tc.name, allocs)
		}
	}
}
