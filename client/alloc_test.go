//go:build !race

package client_test

// TestServedQueryZeroAlloc extends the repository's zero-allocation
// merged-query contract across the wire: with server and client in one
// process over a real loopback TCP connection, a steady-state scalar query
// — client encode, server decode, QueryInto through the connection's
// reusable accumulator, response encode, client decode — must allocate
// (essentially) nothing end to end. testing.AllocsPerRun counts mallocs
// process-wide, so this covers the server's read/serve/write path and the
// client's pooled-call pipeline together. Excluded under -race for the
// same reason as the in-process contract tests: the race-mode sync.Pool
// drops puts at random, making pool misses expected.

import (
	"testing"

	"fastsketches"
	"fastsketches/client"
)

func TestServedQueryZeroAlloc(t *testing.T) {
	addr, _ := startServer(t, fastsketches.RegistryConfig{Shards: 4, Writers: 2})
	cl, err := client.Dial(addr, client.Options{Conns: 1, BatchSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	b := cl.NewBatch(client.Theta, "alloc")
	cb := cl.NewBatch(client.CountMin, "alloc")
	for i := 0; i < 10_000; i++ {
		if err := b.Add(uint64(i)); err != nil {
			t.Fatal(err)
		}
		if err := cb.Add(uint64(i % 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cb.Flush(); err != nil {
		t.Fatal(err)
	}

	// Warm every reusable piece: connection accumulators server-side, call
	// handles and frame buffers client-side, map buckets on both.
	for i := 0; i < 64; i++ {
		if _, err := cl.ThetaEstimate("alloc"); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Count("alloc", uint64(i%64)); err != nil {
			t.Fatal(err)
		}
	}

	// The tolerance absorbs rare runtime-internal allocations (netpoll,
	// scheduler); the contract being pinned is "no per-query allocation on
	// the serving path", which would show up as ≥ 1 alloc/op.
	const runs = 200
	if allocs := testing.AllocsPerRun(runs, func() {
		if _, err := cl.ThetaEstimate("alloc"); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0.5 {
		t.Errorf("served theta estimate allocates %.2f/op end to end, want ~0", allocs)
	}
	if allocs := testing.AllocsPerRun(runs, func() {
		if _, err := cl.Count("alloc", 7); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0.5 {
		t.Errorf("served count-min lookup allocates %.2f/op end to end, want ~0", allocs)
	}

	// Batched ingest: steady-state Add+Flush reuses the batch buffer, the
	// write path and the ack path.
	ib := cl.NewBatch(client.CountMin, "alloc")
	if allocs := testing.AllocsPerRun(runs, func() {
		for i := 0; i < 512; i++ {
			if err := ib.Add(uint64(i % 64)); err != nil {
				t.Fatal(err)
			}
		}
		if err := ib.Flush(); err != nil {
			t.Fatal(err)
		}
	}); allocs > 2 {
		t.Errorf("batched ingest allocates %.2f/flush end to end, want ≤ 2 (lane fan-in WaitGroup)", allocs)
	}
}
