//lint:file-ignore SA1019 This file deliberately exercises the deprecated
// registry facades to pin their equivalence with the Open/Spec API.

package fastsketches_test

// Typed-handle API tests: Open* idempotence, the declarative Spec semantics
// (Shards resize, View re-arm, Autoscale replace, lifecycle recording),
// validation, and the deprecated facade ↔ handle equivalence contract.

import (
	"errors"
	"sort"
	"testing"
	"time"

	"fastsketches"
	"fastsketches/internal/autoscale"
)

func openRegistry(t *testing.T, cfg fastsketches.RegistryConfig) *fastsketches.Registry {
	t.Helper()
	reg, err := fastsketches.NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)
	return reg
}

// TestOpenIdempotent: reopening a live name returns a handle on the same
// sketch, and an empty Spec declares nothing — no resize, no view, no
// lifecycle churn.
func TestOpenIdempotent(t *testing.T) {
	reg := openRegistry(t, fastsketches.RegistryConfig{Shards: 3, Writers: 1})
	h1, err := reg.OpenTheta("idem", fastsketches.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	h1.Update(0, 42)
	h2, err := reg.OpenTheta("idem", fastsketches.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if h1.Sketch() != h2.Sketch() {
		t.Fatal("reopen returned a different sketch")
	}
	if h2.Shards() != 3 || h2.ViewEnabled() {
		t.Errorf("empty Spec changed state: S=%d view=%v", h2.Shards(), h2.ViewEnabled())
	}
	if h2.Family() != "theta" || h2.Name() != "idem" {
		t.Errorf("handle identity %s/%s", h2.Family(), h2.Name())
	}
	inf, ok := h2.Info()
	if !ok || inf.IdleTTL != 0 || inf.Pinned {
		t.Errorf("empty Spec recorded lifecycle: %+v (ok=%v)", inf, ok)
	}
}

// TestSpecDeclarativeShards: Spec.Shards resizes whenever it differs from
// the live S, and 0 leaves S alone.
func TestSpecDeclarativeShards(t *testing.T) {
	reg := openRegistry(t, fastsketches.RegistryConfig{Shards: 2, Writers: 1})
	h, err := reg.OpenCountMin("decl", fastsketches.Spec{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if h.Shards() != 4 {
		t.Fatalf("S=%d after Open{Shards:4}", h.Shards())
	}
	for i := uint64(0); i < 100; i++ {
		h.Update(0, i%8)
	}
	if h, err = reg.OpenCountMin("decl", fastsketches.Spec{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	if h.Shards() != 2 {
		t.Fatalf("S=%d after reopen with Shards:2", h.Shards())
	}
	// The declarative resize drained exactly like Handle.Resize: per-key
	// answers cover the full stream.
	if got := h.Sketch().Estimate(3); got != 13 { // key 3 appears 13× in 0..99 mod 8
		t.Errorf("post-resize estimate %d, want 13", got)
	}
	if h, err = reg.OpenCountMin("decl", fastsketches.Spec{}); err != nil {
		t.Fatal(err)
	}
	if h.Shards() != 2 {
		t.Errorf("S=%d after reopen with Shards:0, want 2 untouched", h.Shards())
	}
}

// TestSpecValidation: malformed Specs are rejected with ErrConfig and leave
// nothing behind.
func TestSpecValidation(t *testing.T) {
	reg := openRegistry(t, fastsketches.RegistryConfig{Shards: 1, Writers: 1})
	if _, err := reg.OpenHLL("bad", fastsketches.Spec{Shards: -1}); !errors.Is(err, fastsketches.ErrConfig) {
		t.Errorf("negative Shards: %v, want ErrConfig", err)
	}
	if _, err := reg.OpenHLL("bad", fastsketches.Spec{IdleTTL: -time.Second}); !errors.Is(err, fastsketches.ErrConfig) {
		t.Errorf("negative IdleTTL: %v, want ErrConfig", err)
	}
}

// TestSpecViewRearm: a non-nil Spec.View (re-)materializes the merged view
// on every Open that declares it; a nil one leaves the view state alone.
func TestSpecViewRearm(t *testing.T) {
	reg := openRegistry(t, fastsketches.RegistryConfig{Shards: 2, Writers: 1})
	view := &fastsketches.ViewConfig{RefreshEvery: time.Hour}
	h, err := reg.OpenQuantiles("viewed", fastsketches.Spec{View: view})
	if err != nil {
		t.Fatal(err)
	}
	if !h.ViewEnabled() {
		t.Fatal("Spec.View did not enable the view")
	}
	if h, err = reg.OpenQuantiles("viewed", fastsketches.Spec{}); err != nil {
		t.Fatal(err)
	}
	if !h.ViewEnabled() {
		t.Error("nil Spec.View disabled a live view")
	}
	if !h.DisableView() {
		t.Fatal("DisableView found no view")
	}
	if h, err = reg.OpenQuantiles("viewed", fastsketches.Spec{View: view}); err != nil {
		t.Fatal(err)
	}
	if !h.ViewEnabled() {
		t.Error("reopen with Spec.View did not re-arm the view")
	}
}

// TestSpecAutoscaleReplace: Spec.Autoscale attaches with replace semantics —
// one controller per sketch, swapped not stacked.
func TestSpecAutoscaleReplace(t *testing.T) {
	reg := openRegistry(t, fastsketches.RegistryConfig{Shards: 1, Writers: 1})
	mc := autoscale.NewManualClock(time.Unix(0, 0))
	pol := func(max int) *fastsketches.AutoscalePolicy {
		return &fastsketches.AutoscalePolicy{HighWater: 1e9, MaxShards: max, SampleEvery: time.Hour, Clock: mc}
	}
	h, err := reg.OpenTheta("scaled", fastsketches.Spec{Autoscale: pol(4)})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h.AutoscaleStats(); !ok {
		t.Fatal("no controller after Open{Autoscale}")
	}
	if h, err = reg.OpenTheta("scaled", fastsketches.Spec{Autoscale: pol(8)}); err != nil {
		t.Fatal(err)
	}
	if n := h.StopAutoscale(); n != 1 {
		t.Errorf("StopAutoscale stopped %d controllers, want exactly 1 (replace, not stack)", n)
	}
	if _, ok := h.AutoscaleStats(); ok {
		t.Error("controller still attached after StopAutoscale")
	}
}

// TestSpecLifecycleRecorded: IdleTTL/Pinned land in SketchInfo, empty Specs
// never clobber them, and a later declaration updates them.
func TestSpecLifecycleRecorded(t *testing.T) {
	reg := openRegistry(t, fastsketches.RegistryConfig{Shards: 1, Writers: 1})
	h, err := reg.OpenHLL("lc", fastsketches.Spec{IdleTTL: time.Minute, Pinned: true})
	if err != nil {
		t.Fatal(err)
	}
	inf, ok := h.Info()
	if !ok || inf.IdleTTL != time.Minute || !inf.Pinned {
		t.Fatalf("lifecycle not recorded: %+v (ok=%v)", inf, ok)
	}
	if _, err = reg.OpenHLL("lc", fastsketches.Spec{}); err != nil {
		t.Fatal(err)
	}
	if inf, _ = h.Info(); inf.IdleTTL != time.Minute || !inf.Pinned {
		t.Errorf("empty Spec clobbered lifecycle: %+v", inf)
	}
	if _, err = reg.OpenHLL("lc", fastsketches.Spec{IdleTTL: time.Hour}); err != nil {
		t.Fatal(err)
	}
	if inf, _ = h.Info(); inf.IdleTTL != time.Hour || inf.Pinned {
		t.Errorf("redeclaration not applied: %+v, want IdleTTL=1h Pinned=false", inf)
	}
	// Drop clears the record: a fresh incarnation starts with no lifecycle.
	if !h.Drop() {
		t.Fatal("Drop found nothing")
	}
	h2, err := reg.OpenHLL("lc", fastsketches.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if inf, _ = h2.Info(); inf.IdleTTL != 0 || inf.Pinned {
		t.Errorf("lifecycle leaked across Drop: %+v", inf)
	}
}

// TestDeprecatedFacadeEquivalence: the deprecated per-family accessors and
// the Open/Spec constructors resolve to the same underlying sketch, so the
// two API generations interoperate during the migration window.
func TestDeprecatedFacadeEquivalence(t *testing.T) {
	reg := openRegistry(t, fastsketches.RegistryConfig{Shards: 2, Writers: 1})
	th, err := reg.OpenTheta("eq", fastsketches.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if reg.Theta("eq") != th.Sketch() {
		t.Error("Theta facade and OpenTheta disagree")
	}
	hl, err := reg.OpenHLL("eq", fastsketches.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if reg.HLL("eq") != hl.Sketch() {
		t.Error("HLL facade and OpenHLL disagree")
	}
	qu, err := reg.OpenQuantiles("eq", fastsketches.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if reg.Quantiles("eq") != qu.Sketch() {
		t.Error("Quantiles facade and OpenQuantiles disagree")
	}
	cm, err := reg.OpenCountMin("eq", fastsketches.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if reg.CountMin("eq") != cm.Sketch() {
		t.Error("CountMin facade and OpenCountMin disagree")
	}
	// The deprecated resize facade steers the same sketch the handle sees.
	if err := reg.ResizeTheta("eq", 3); err != nil {
		t.Fatal(err)
	}
	if th.Shards() != 3 {
		t.Errorf("facade resize invisible through handle: S=%d", th.Shards())
	}
}

// TestInfosEnumeration: Infos is sorted by family then name and populated
// with the ops-facing fields the /metrics exposition and the sweeper read.
func TestInfosEnumeration(t *testing.T) {
	reg := openRegistry(t, fastsketches.RegistryConfig{Shards: 2, Writers: 1, BufferSize: 1})
	names := []string{"b", "a", "c"}
	for _, n := range names {
		h, err := reg.OpenTheta(n, fastsketches.Spec{})
		if err != nil {
			t.Fatal(err)
		}
		h.Update(0, 7)
	}
	if _, err := reg.OpenCountMin("z", fastsketches.Spec{Pinned: true}); err != nil {
		t.Fatal(err)
	}

	infos := reg.Infos()
	if len(infos) != 4 {
		t.Fatalf("Infos returned %d entries, want 4", len(infos))
	}
	if !sort.SliceIsSorted(infos, func(i, j int) bool {
		if infos[i].Family != infos[j].Family {
			return infos[i].Family < infos[j].Family
		}
		return infos[i].Name < infos[j].Name
	}) {
		t.Error("Infos not sorted by family then name")
	}
	for _, inf := range infos {
		if inf.SizeBytes <= 0 {
			t.Errorf("%s/%s: SizeBytes %d, want > 0", inf.Family, inf.Name, inf.SizeBytes)
		}
		if inf.Family == "theta" && inf.Ingested <= 0 {
			t.Errorf("%s/%s: Ingested %d after an update", inf.Family, inf.Name, inf.Ingested)
		}
		if inf.Family == "countmin" && !inf.Pinned {
			t.Errorf("%s/%s: Pinned flag lost in enumeration", inf.Family, inf.Name)
		}
	}

	got := reg.Names()
	want := []string{"countmin/z", "theta/a", "theta/b", "theta/c"}
	if len(got) != len(want) {
		t.Fatalf("Names: %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names: %v, want %v", got, want)
		}
	}
}
