// Benchmarks mapping one-to-one onto the tables and figures of "Fast
// Concurrent Data Sketches" (PPoPP 2020). Each BenchmarkFigureX/TableX
// exercises the same code path as the corresponding cmd/benchrunner
// experiment, in testing.B form so `go test -bench=. -benchmem` regenerates
// the headline numbers. Shapes (who wins, crossovers) are the reproduction
// target; absolute Mops depend on the host.
package fastsketches

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"fastsketches/internal/adversary"
	"fastsketches/internal/core"
	"fastsketches/internal/harness"
	"fastsketches/internal/locked"
	"fastsketches/internal/quantiles"
	"fastsketches/internal/theta"
)

// feedConcurrent drives n updates through a fresh concurrent Θ sketch with
// the given writer count, returning after all writers finish.
func feedConcurrent(writers, lgK, bufSize int, maxErr float64, n int, base uint64) {
	comp := theta.NewComposable(lgK, DefaultSeed)
	fw := core.New[uint64](comp, core.Config{
		Workers: writers, BufferSize: bufSize, MaxError: maxErr, K: 1 << lgK,
	})
	fw.Start()
	if writers == 1 {
		for i := 0; i < n; i++ {
			fw.Update(0, theta.HashKey(base+uint64(i), DefaultSeed))
		}
	} else {
		var wg sync.WaitGroup
		per := n / writers
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				lo := base + uint64(w*per)
				for i := 0; i < per; i++ {
					fw.Update(w, theta.HashKey(lo+uint64(i), DefaultSeed))
				}
			}(w)
		}
		wg.Wait()
	}
	fw.Close()
}

// feedLocked drives n updates through a fresh lock-based Θ sketch.
func feedLocked(writers, lgK int, n int, base uint64) {
	sk := locked.NewTheta(lgK, DefaultSeed)
	if writers == 1 {
		for i := 0; i < n; i++ {
			sk.Update(base + uint64(i))
		}
		return
	}
	var wg sync.WaitGroup
	per := n / writers
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := base + uint64(w*per)
			for i := 0; i < per; i++ {
				sk.Update(lo + uint64(i))
			}
		}(w)
	}
	wg.Wait()
}

// BenchmarkFigure1 is the intro scalability comparison: update-only
// workload, b=1, k=4096, concurrent vs lock-protected, across thread counts.
// One op = one update (b.N split across writers).
func BenchmarkFigure1(b *testing.B) {
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("Concurrent/threads=%d", threads), func(b *testing.B) {
			b.ReportAllocs()
			feedConcurrent(threads, 12, 1, 1.0, b.N, 1)
		})
		b.Run(fmt.Sprintf("LockBased/threads=%d", threads), func(b *testing.B) {
			b.ReportAllocs()
			feedLocked(threads, 12, b.N, 1)
		})
	}
}

// BenchmarkTable1 is the adversarial error simulation: one op = one
// simulated stream of n=2^15 uniform hashes evaluated under the sequential,
// strong-adversary and weak-adversary estimators.
func BenchmarkTable1(b *testing.B) {
	sim := adversary.NewSimulator(1<<15, 1<<10, 8, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.Trial()
	}
}

// BenchmarkFigure3 regenerates the strong-adversary region grid.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		adversary.Figure3Grid(1<<15, 1<<10, 0.025, 0.040, 31)
	}
}

// BenchmarkFigure4 regenerates the estimator histograms (one op = 100
// simulation trials plus binning).
func BenchmarkFigure4(b *testing.B) {
	sim := adversary.NewSimulator(1<<15, 1<<10, 8, 1)
	for i := 0; i < b.N; i++ {
		seq, _, weak := sim.Run(100)
		adversary.Histogram(seq, 27000, 39000, 60)
		adversary.Histogram(weak, 27000, 39000, 60)
	}
}

// BenchmarkFigure5 runs one pitchfork trial per op: feed 2^14 uniques
// through a single-writer concurrent sketch and read the live estimate.
// The a variant disables the eager phase (e=1.0), b enables it (e=0.04).
func BenchmarkFigure5(b *testing.B) {
	for _, cfg := range []struct {
		name string
		e    float64
		buf  int
	}{{"a_NoEager", 1.0, 16}, {"b_Eager", 0.04, 0}} {
		b.Run(cfg.name, func(b *testing.B) {
			const x = 1 << 14
			for i := 0; i < b.N; i++ {
				comp := theta.NewComposable(12, DefaultSeed)
				fw := core.New[uint64](comp, core.Config{
					Workers: 1, BufferSize: cfg.buf, MaxError: cfg.e, K: 4096,
				})
				fw.Start()
				base := uint64(i) << 44
				for j := 0; j < x; j++ {
					fw.Update(0, theta.HashKey(base+uint64(j), DefaultSeed))
				}
				_ = comp.Estimate() // live query, pre-drain
				fw.Close()
			}
			b.ReportMetric(float64(x), "uniques/op")
		})
	}
}

// BenchmarkFigure6 is the write-only throughput workload at the large-stream
// end (the regime Figure 6b zooms into): one op = one update, k=4096,
// e=0.04, for the paper's writer counts and the lock-based baselines.
func BenchmarkFigure6(b *testing.B) {
	for _, writers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("Concurrent/writers=%d", writers), func(b *testing.B) {
			feedConcurrent(writers, 12, 0, 0.04, b.N, 1)
		})
	}
	for _, writers := range []int{1, 4} {
		b.Run(fmt.Sprintf("LockBased/writers=%d", writers), func(b *testing.B) {
			feedLocked(writers, 12, b.N, 1)
		})
	}
}

// BenchmarkFigure7 is the mixed workload: writers ingest (one op = one
// update) while 10 background readers query with 1ms pauses.
func BenchmarkFigure7(b *testing.B) {
	for _, writers := range []int{1, 2} {
		for _, lock := range []bool{false, true} {
			name := fmt.Sprintf("Concurrent/writers=%d", writers)
			if lock {
				name = fmt.Sprintf("LockBased/writers=%d", writers)
			}
			b.Run(name, func(b *testing.B) {
				stop := make(chan struct{})
				var readers sync.WaitGroup
				var estimate func() float64
				var update func(w int, key uint64)
				var done func()
				if lock {
					sk := locked.NewTheta(12, DefaultSeed)
					estimate = sk.Estimate
					update = func(_ int, k uint64) { sk.Update(k) }
					done = func() {}
				} else {
					comp := theta.NewComposable(12, DefaultSeed)
					fw := core.New[uint64](comp, core.Config{Workers: writers, MaxError: 0.04, K: 4096})
					fw.Start()
					estimate = comp.Estimate
					update = func(w int, k uint64) { fw.Update(w, theta.HashKey(k, DefaultSeed)) }
					done = fw.Close
				}
				for r := 0; r < 10; r++ {
					readers.Add(1)
					go func() {
						defer readers.Done()
						for {
							select {
							case <-stop:
								return
							default:
							}
							_ = estimate()
							time.Sleep(time.Millisecond)
						}
					}()
				}
				b.ResetTimer()
				var wg sync.WaitGroup
				per := b.N / writers
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						lo := uint64(w * per)
						for i := 0; i < per; i++ {
							update(w, lo+uint64(i))
						}
					}(w)
				}
				wg.Wait()
				b.StopTimer()
				close(stop)
				readers.Wait()
				done()
			})
		}
	}
}

// BenchmarkFigure8 contrasts eager (e=0.04, b=5) and no-eager (e=1.0, b=16)
// configurations on a small stream: one op = feed 1024 uniques into a fresh
// sketch (the regime where the adaptation matters).
func BenchmarkFigure8(b *testing.B) {
	const x = 1024
	b.Run("Eager", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			feedConcurrent(1, 12, 5, 0.04, x, uint64(i)<<44)
		}
		b.ReportMetric(float64(x), "uniques/op")
	})
	b.Run("NoEager", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			feedConcurrent(1, 12, 16, 1.0, x, uint64(i)<<44)
		}
		b.ReportMetric(float64(x), "uniques/op")
	})
}

// BenchmarkTable2 measures single-writer update cost across the k values of
// Table 2 (the throughput side of the tradeoff; the accuracy side is
// regenerated by cmd/benchrunner table2).
func BenchmarkTable2(b *testing.B) {
	for _, lgK := range []int{8, 10, 12} {
		b.Run(fmt.Sprintf("Concurrent/k=%d", 1<<lgK), func(b *testing.B) {
			feedConcurrent(1, lgK, 0, 0.04, b.N, 1)
		})
		b.Run(fmt.Sprintf("LockBased/k=%d", 1<<lgK), func(b *testing.B) {
			feedLocked(1, lgK, b.N, 1)
		})
	}
}

// BenchmarkQuantilesError exercises the Section 6.2 workload: concurrent
// quantiles ingestion with live rank queries (one op = one update; a query
// every 1024 updates).
func BenchmarkQuantilesError(b *testing.B) {
	comp := quantiles.NewComposable(128, quantiles.NewRandomBits(1))
	fw := core.New[float64](comp, core.Config{Workers: 1, BufferSize: 64, MaxError: 1})
	fw.Start()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fw.Update(0, float64(i))
		if i&1023 == 0 {
			_ = comp.Quantile(0.5)
		}
	}
	b.StopTimer()
	fw.Close()
}

// BenchmarkConcurrentThetaUpdate is the library's headline hot path through
// the public API.
func BenchmarkConcurrentThetaUpdate(b *testing.B) {
	sk, err := NewConcurrentTheta(ThetaConfig{LgK: 12, Writers: 1, MaxError: 0.04})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sk.Update(0, uint64(i))
	}
	b.StopTimer()
	sk.Close()
}

// BenchmarkConcurrentQuantilesQuery measures the wait-free snapshot query.
func BenchmarkConcurrentQuantilesQuery(b *testing.B) {
	q, err := NewConcurrentQuantiles(QuantilesConfig{K: 128})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1<<18; i++ {
		q.Update(0, float64(i))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = q.Quantile(0.5)
	}
	b.StopTimer()
	q.Close()
}

// BenchmarkHarnessSweepSmoke keeps the harness itself honest: one op = a
// miniature speed profile end to end.
func BenchmarkHarnessSweepSmoke(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.SpeedProfile(harness.SpeedConfig{
			LgMinU: 8, LgMaxU: 10, PPO: 1, MaxTrials: 2, MinTrials: 1,
			Writers: 1, LgK: 8, MaxError: 1.0,
		})
	}
}
